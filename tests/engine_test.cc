#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/rewriter.h"
#include "engine/view_store.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "util/metrics.h"
#include "util/random.h"

namespace autoview {
namespace {

/// Fixture loading the paper's Fig. 2 schema with synthetic rows.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    std::vector<Row> memo_rows;
    for (int i = 0; i < 200; ++i) {
      memo_rows.push_back({Value(int64_t{i % 40}),
                           Value("memo" + std::to_string(i % 7)),
                           Value(i % 3 == 0 ? "1010" : "1011"),
                           Value(i % 5 < 2 ? "pen" : "book")});
    }
    ASSERT_TRUE(db_.AddTable(TableSchema("user_memo",
                                         {{"user_id", ColumnType::kInt64},
                                          {"memo", ColumnType::kString},
                                          {"dt", ColumnType::kString},
                                          {"memo_type", ColumnType::kString}}),
                             std::move(memo_rows))
                    .ok());
    std::vector<Row> action_rows;
    for (int i = 0; i < 300; ++i) {
      action_rows.push_back({Value(int64_t{i % 50}),
                             Value("act" + std::to_string(i % 5)),
                             Value(int64_t{i % 4}),
                             Value(i % 3 == 0 ? "1010" : "1012")});
    }
    ASSERT_TRUE(
        db_.AddTable(TableSchema("user_action",
                                 {{"user_id", ColumnType::kInt64},
                                  {"action", ColumnType::kString},
                                  {"type", ColumnType::kInt64},
                                  {"dt", ColumnType::kString}}),
                     std::move(action_rows))
            .ok());
    ASSERT_TRUE(db_.ComputeAllStats().ok());
  }

  PlanNodePtr MustBuild(const std::string& sql) {
    PlanBuilder builder(&db_.catalog());
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }

  ExecResult MustExecute(const PlanNodePtr& plan) {
    Executor exec(&db_);
    auto r = exec.Execute(*plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : ExecResult{};
  }

  Database db_;
};

constexpr const char* kFig2Sql =
    "select t1.user_id, count(*) as cnt from ("
    "select user_id, memo from user_memo "
    "where dt = '1010' and memo_type = 'pen') t1 "
    "inner join (select user_id, action from user_action "
    "where type = 1 and dt = '1010') t2 "
    "on t1.user_id = t2.user_id group by t1.user_id";

TEST_F(EngineTest, ScanReturnsAllRows) {
  auto result = MustExecute(MustBuild("SELECT * FROM user_memo"));
  EXPECT_EQ(result.table.num_rows(), 200u);
  EXPECT_GT(result.cost.cpu_units, 0.0);
  EXPECT_EQ(result.cost.output_rows, 200u);
}

TEST_F(EngineTest, FilterSelectsMatchingRows) {
  auto result =
      MustExecute(MustBuild("SELECT * FROM user_memo WHERE dt = '1010'"));
  // i % 3 == 0 for 200 rows -> 67 matches.
  EXPECT_EQ(result.table.num_rows(), 67u);
  for (const auto& row : result.table.rows) {
    EXPECT_EQ(row[2].AsString(), "1010");
  }
}

TEST_F(EngineTest, FilterComparisonOperators) {
  EXPECT_EQ(MustExecute(MustBuild(
                            "SELECT * FROM user_action WHERE type < 2"))
                .table.num_rows(),
            150u);
  EXPECT_EQ(MustExecute(MustBuild(
                            "SELECT * FROM user_action WHERE type <= 2"))
                .table.num_rows(),
            225u);
  EXPECT_EQ(MustExecute(MustBuild(
                            "SELECT * FROM user_action WHERE type <> 0"))
                .table.num_rows(),
            225u);
  EXPECT_EQ(MustExecute(MustBuild(
                            "SELECT * FROM user_action WHERE NOT type = 0"))
                .table.num_rows(),
            225u);
  EXPECT_EQ(MustExecute(MustBuild("SELECT * FROM user_action WHERE type = 1 "
                                  "OR type = 2"))
                .table.num_rows(),
            150u);
}

TEST_F(EngineTest, ProjectSelectsAndRenames) {
  auto result =
      MustExecute(MustBuild("SELECT user_id AS uid, memo FROM user_memo"));
  EXPECT_EQ(result.table.num_columns(), 2u);
  EXPECT_EQ(result.table.columns[0].name, "uid");
  EXPECT_EQ(result.table.num_rows(), 200u);
}

TEST_F(EngineTest, HashJoinMatchesNestedLoopSemantics) {
  auto join = MustBuild(
      "SELECT m.user_id FROM user_memo m INNER JOIN user_action a "
      "ON m.user_id = a.user_id");
  auto result = MustExecute(join);
  // Manual count: each memo user_id u in [0,40) matches action rows with
  // user_id == u; user_ids 0..39 appear 5 times in memo (200/40) and 6
  // times in action (300/50 = 6 for each of 0..49).
  EXPECT_EQ(result.table.num_rows(), 200u * 6u);
}

TEST_F(EngineTest, NonEquiJoinFallsBackToNestedLoop) {
  // ON with an inequality only: no hash key, nested loop executes it.
  auto plan = MustBuild(
      "SELECT m.user_id FROM user_memo m INNER JOIN user_action a "
      "ON m.user_id < a.type");
  auto result = MustExecute(plan);
  // Verify against a manual count: memo user_id in [0,150); action type
  // in [0,4). Pairs with user_id < type.
  size_t expected = 0;
  auto memo = MustExecute(MustBuild("SELECT * FROM user_memo"));
  auto action = MustExecute(MustBuild("SELECT * FROM user_action"));
  for (const auto& m : memo.table.rows) {
    for (const auto& a : action.table.rows) {
      if (m[0].AsInt() < a[2].AsInt()) ++expected;
    }
  }
  EXPECT_EQ(result.table.num_rows(), expected);
}

TEST_F(EngineTest, EquiJoinWithResidualPredicate) {
  auto plan = MustBuild(
      "SELECT m.user_id FROM user_memo m INNER JOIN user_action a "
      "ON m.user_id = a.user_id AND a.type > 1");
  auto no_residual = MustBuild(
      "SELECT m.user_id FROM user_memo m INNER JOIN user_action a "
      "ON m.user_id = a.user_id WHERE a.type > 1");
  auto with = MustExecute(plan);
  auto manual = MustExecute(no_residual);
  EXPECT_TRUE(TablesEqualUnordered(with.table, manual.table));
  // The residual form avoids materializing non-matching pairs, so its
  // output-row charge is identical but the filter happens inside the
  // join: both must produce the same row count.
  EXPECT_EQ(with.table.num_rows(), manual.table.num_rows());
}

TEST_F(EngineTest, MultiKeyEquiJoin) {
  auto plan = MustBuild(
      "SELECT m.user_id FROM user_memo m INNER JOIN user_action a "
      "ON m.user_id = a.user_id AND m.dt = a.dt");
  auto result = MustExecute(plan);
  size_t expected = 0;
  auto memo = MustExecute(MustBuild("SELECT * FROM user_memo"));
  auto action = MustExecute(MustBuild("SELECT * FROM user_action"));
  for (const auto& m : memo.table.rows) {
    for (const auto& a : action.table.rows) {
      if (m[0].AsInt() == a[0].AsInt() && m[2].AsString() == a[3].AsString()) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(result.table.num_rows(), expected);
}

TEST_F(EngineTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  auto result = MustExecute(
      MustBuild("SELECT COUNT(*) AS c FROM user_memo WHERE dt = 'nope'"));
  ASSERT_EQ(result.table.num_rows(), 1u);
  EXPECT_EQ(result.table.rows[0][0].AsInt(), 0);
}

TEST_F(EngineTest, AggregateFunctions) {
  auto result = MustExecute(MustBuild(
      "SELECT type, COUNT(*) AS c, SUM(user_id) AS s, MIN(user_id) AS mn, "
      "MAX(user_id) AS mx, AVG(user_id) AS av FROM user_action GROUP BY "
      "type"));
  ASSERT_EQ(result.table.num_rows(), 4u);  // type in {0,1,2,3}
  for (const auto& row : result.table.rows) {
    EXPECT_EQ(row[1].AsInt(), 75);  // 300 rows / 4 types
    EXPECT_NEAR(row[5].AsDouble(),
                row[2].AsDouble() / row[1].AsDouble(), 1e-9);
    EXPECT_LE(row[3].AsDouble(), row[4].AsDouble());
  }
}

TEST_F(EngineTest, Fig2QueryExecutes) {
  auto result = MustExecute(MustBuild(kFig2Sql));
  EXPECT_GT(result.table.num_rows(), 0u);
  EXPECT_EQ(result.table.num_columns(), 2u);
  // COUNT is positive per group.
  for (const auto& row : result.table.rows) {
    EXPECT_GT(row[1].AsInt(), 0);
  }
}

TEST_F(EngineTest, CostGrowsWithWork) {
  auto scan = MustExecute(MustBuild("SELECT * FROM user_memo"));
  auto query = MustExecute(MustBuild(kFig2Sql));
  EXPECT_GT(query.cost.cpu_units, scan.cost.cpu_units);
}

TEST_F(EngineTest, CostIsDeterministic) {
  auto a = MustExecute(MustBuild(kFig2Sql));
  auto b = MustExecute(MustBuild(kFig2Sql));
  EXPECT_EQ(a.cost.cpu_units, b.cost.cpu_units);
  EXPECT_EQ(a.cost.peak_bytes, b.cost.peak_bytes);
  EXPECT_EQ(a.cost.output_bytes, b.cost.output_bytes);
}

TEST_F(EngineTest, PricingConvertsUnits) {
  Pricing pricing;
  CostReport report;
  report.cpu_units = pricing.consts.units_per_minute;  // one core-minute
  report.peak_bytes = 2e9;                             // 2 GB
  EXPECT_NEAR(pricing.QueryCost(report), pricing.beta + 2 * pricing.gamma,
              1e-12);
  EXPECT_NEAR(pricing.StorageFee(3e9), 3 * pricing.alpha, 1e-12);
}

TEST_F(EngineTest, MaterializeAndRewritePreservesResults) {
  auto query = MustBuild(kFig2Sql);
  auto original = MustExecute(query);

  // Materialize the join subquery (s3 in the paper).
  auto s3 = query->child(0);
  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  auto view = store.Materialize(s3, exec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  Rewriter rewriter(&db_.catalog());
  bool changed = false;
  auto rewritten = rewriter.Rewrite(query, *view.value(), &changed);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_TRUE(changed);

  auto after = MustExecute(rewritten.value());
  EXPECT_TRUE(TablesEqualUnordered(original.table, after.table))
      << "original:\n"
      << original.table.ToString() << "rewritten:\n"
      << after.table.ToString();
  // The rewritten query must be cheaper: it scans the view instead of
  // filtering and joining the base tables.
  EXPECT_LT(after.cost.cpu_units, original.cost.cpu_units);
}

TEST_F(EngineTest, RewriteWithEquivalentButDifferentPlan) {
  auto query = MustBuild(kFig2Sql);
  // A view built from the commuted join: still equivalent canonically.
  auto commuted = MustBuild(
      "select t2.user_id as user_id_b, t1.user_id as user_id, t1.memo as "
      "memo, t2.action as action from ("
      "select user_id, action from user_action "
      "where type = 1 and dt = '1010') t2 "
      "inner join (select user_id, memo from user_memo "
      "where dt = '1010' and memo_type = 'pen') t1 "
      "on t1.user_id = t2.user_id");
  ASSERT_NE(commuted, nullptr);
  // Not asserting equivalence of these two (names differ); this test
  // covers rewriting when the view matches a *nested* subtree.
  auto s1 = query->child(0)->child(0);  // left Project subtree
  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  auto view = store.Materialize(s1, exec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  Rewriter rewriter(&db_.catalog());
  bool changed = false;
  auto rewritten = rewriter.Rewrite(query, *view.value(), &changed);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(changed);
  auto original = MustExecute(query);
  auto after = MustExecute(rewritten.value());
  EXPECT_TRUE(TablesEqualUnordered(original.table, after.table));
}

TEST_F(EngineTest, RewriteAllAppliesNonOverlappingViews) {
  auto query = MustBuild(kFig2Sql);
  auto s1 = query->child(0)->child(0);
  auto s2 = query->child(0)->child(1);
  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  auto v1 = store.Materialize(s1, exec);
  auto v2 = store.Materialize(s2, exec);
  ASSERT_TRUE(v1.ok() && v2.ok());

  Rewriter rewriter(&db_.catalog());
  size_t substitutions = 0;
  auto rewritten =
      rewriter.RewriteAll(query, {v1.value(), v2.value()}, &substitutions);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(substitutions, 2u);
  auto original = MustExecute(query);
  auto after = MustExecute(rewritten.value());
  EXPECT_TRUE(TablesEqualUnordered(original.table, after.table));
}

TEST_F(EngineTest, RewriteWithUnrelatedViewIsNoOp) {
  auto query = MustBuild(kFig2Sql);
  auto unrelated =
      MustBuild("SELECT user_id, action FROM user_action WHERE type = 3");
  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  auto view = store.Materialize(unrelated, exec);
  ASSERT_TRUE(view.ok());
  Rewriter rewriter(&db_.catalog());
  bool changed = true;
  auto rewritten = rewriter.Rewrite(query, *view.value(), &changed);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_FALSE(changed);
  // No substitution: the identical plan object flows through.
  EXPECT_TRUE(rewritten.value()->Equals(*query));
}

TEST_F(EngineTest, RewriteAfterViewDroppedFallsBackToBaseTables) {
  auto query = MustBuild(kFig2Sql);
  auto s3 = query->child(0);
  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  auto view = store.Materialize(s3, exec);
  ASSERT_TRUE(view.ok());
  MaterializedView copy = *view.value();  // descriptor outlives the drop
  ASSERT_TRUE(store.Drop(view.value()->id).ok());
  Rewriter rewriter(&db_.catalog());
  GlobalRobustness().Reset();
  bool changed = false;
  // The backing table is gone: the matched subtree keeps its base-table
  // form (no substitution, no dangling scan) and the fallback is
  // counted — the query still answers correctly.
  auto rewritten = rewriter.Rewrite(query, copy, &changed);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_FALSE(changed);
  EXPECT_TRUE(rewritten.value()->Equals(*query));
  EXPECT_EQ(GlobalRobustness().Read().rewrite_fallbacks, 1u);
  auto original = MustExecute(query);
  auto after = MustExecute(rewritten.value());
  EXPECT_TRUE(TablesEqualUnordered(original.table, after.table));
}

TEST_F(EngineTest, RewriteRestoresWideSchemaColumnOrder) {
  // 48-column table; the query projects the columns in reverse order
  // with renames, so BuildReplacement's name -> index matching (a map,
  // not the old per-column linear scan) must restore every position
  // exactly. Guards the wide-schema output-matching path.
  const size_t kCols = 48;
  std::vector<ColumnSchema> cols;
  for (size_t c = 0; c < kCols; ++c) {
    cols.push_back({"c" + std::to_string(c), ColumnType::kInt64});
  }
  std::vector<Row> rows;
  for (int64_t r = 0; r < 20; ++r) {
    Row row;
    for (size_t c = 0; c < kCols; ++c) {
      row.push_back(Value(r * 100 + static_cast<int64_t>(c)));
    }
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db_.AddTable(TableSchema("wide", cols), std::move(rows)).ok());
  ASSERT_TRUE(db_.ComputeAllStats().ok());

  std::string select = "SELECT ";
  for (size_t c = kCols; c-- > 0;) {
    select += "c" + std::to_string(c) + " AS r" + std::to_string(c);
    if (c != 0) select += ", ";
  }
  auto query = MustBuild(select + " FROM wide WHERE c0 >= 0");
  ASSERT_NE(query, nullptr);
  auto original = MustExecute(query);
  ASSERT_EQ(original.table.num_columns(), kCols);

  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  auto view = store.Materialize(query, exec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  Rewriter rewriter(&db_.catalog());
  bool changed = false;
  auto rewritten = rewriter.Rewrite(query, *view.value(), &changed);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_TRUE(changed);
  auto after = MustExecute(rewritten.value());
  ASSERT_EQ(after.table.num_columns(), kCols);
  for (size_t c = 0; c < kCols; ++c) {
    EXPECT_EQ(after.table.columns[c].name, original.table.columns[c].name);
  }
  EXPECT_TRUE(TablesEqualUnordered(original.table, after.table));
}

TEST_F(EngineTest, SpillPenaltyKicksInAboveThreshold) {
  CostConstants consts;
  EXPECT_EQ(consts.SpillMultiplier(0.0), 1.0);
  EXPECT_EQ(consts.SpillMultiplier(consts.spill_threshold_bytes), 1.0);
  EXPECT_NEAR(consts.SpillMultiplier(2 * consts.spill_threshold_bytes),
              1.0 + consts.spill_factor, 1e-12);
  EXPECT_GT(consts.SpillMultiplier(8 * consts.spill_threshold_bytes),
            consts.SpillMultiplier(4 * consts.spill_threshold_bytes));
  // Disabled threshold never penalizes.
  CostConstants off;
  off.spill_threshold_bytes = 0;
  EXPECT_EQ(off.SpillMultiplier(1e12), 1.0);
}

TEST_F(EngineTest, ViewStoreLifecycle) {
  auto query = MustBuild(kFig2Sql);
  auto s3 = query->child(0);
  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  auto view = store.Materialize(s3, exec);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.FindByKey(view.value()->canonical_key), nullptr);
  EXPECT_GT(view.value()->byte_size, 0u);
  // Duplicate materialization rejected.
  EXPECT_FALSE(store.Materialize(s3, exec).ok());
  // Overhead is positive.
  Pricing pricing;
  EXPECT_GT(store.TotalOverhead(pricing), 0.0);
  // Dropping removes the backing table.
  const std::string table_name = view.value()->table_name;
  ASSERT_TRUE(store.Drop(view.value()->id).ok());
  EXPECT_FALSE(db_.GetTable(table_name).ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(EngineTest, StatsComputed) {
  const TableStats& stats = db_.catalog().GetStats("user_action");
  EXPECT_EQ(stats.row_count, 300u);
  EXPECT_GT(stats.byte_size, 0u);
  ASSERT_EQ(stats.columns.size(), 4u);
  EXPECT_EQ(stats.columns[0].distinct_count, 50.0);  // user_id 0..49
  EXPECT_EQ(stats.columns[2].min_value, 0.0);
  EXPECT_EQ(stats.columns[2].max_value, 3.0);
  // Histogram selectivity: type = 1 matches 1/4 of rows.
  const auto& hist = stats.columns[2].histogram;
  EXPECT_NEAR(hist.EqualitySelectivity(1.0, 4.0), 0.25, 0.1);
  EXPECT_NEAR(hist.LessThanSelectivity(2.0), 0.5, 0.15);
}

TEST_F(EngineTest, TypeMismatchRejected) {
  Database db;
  EXPECT_FALSE(db.AddTable(TableSchema("t", {{"a", ColumnType::kInt64}}),
                           {{Value("oops")}})
                   .ok());
  EXPECT_FALSE(db.AddTable(TableSchema("u", {{"a", ColumnType::kInt64},
                                             {"b", ColumnType::kInt64}}),
                           {{Value(int64_t{1})}})
                   .ok());
}

TEST_F(EngineTest, TablesEqualUnorderedDetectsDifferences) {
  Table a, b;
  a.columns = b.columns = {{"x", ColumnType::kInt64}};
  a.rows = {{Value(int64_t{1})}, {Value(int64_t{2})}};
  b.rows = {{Value(int64_t{2})}, {Value(int64_t{1})}};
  EXPECT_TRUE(TablesEqualUnordered(a, b));
  b.rows.push_back({Value(int64_t{3})});
  EXPECT_FALSE(TablesEqualUnordered(a, b));
  b.rows.pop_back();
  b.rows[0] = {Value(int64_t{9})};
  EXPECT_FALSE(TablesEqualUnordered(a, b));
}

}  // namespace
}  // namespace autoview
