#include <gtest/gtest.h>

#include "engine/table.h"
#include "plan/expr.h"

namespace autoview {
namespace {

Row MakeRow() {
  return {Value(int64_t{5}), Value("pen"), Value(2.5)};
}

TEST(ExprTest, ScalarEvaluation) {
  auto col = Expr::Column(0, "a", ColumnType::kInt64);
  auto lit = Expr::Literal(Value(int64_t{9}));
  Row row = MakeRow();
  EXPECT_EQ(col->EvalScalar(row).AsInt(), 5);
  EXPECT_EQ(lit->EvalScalar(row).AsInt(), 9);
}

TEST(ExprTest, ComparisonOperators) {
  Row row = MakeRow();
  auto a = Expr::Column(0, "a", ColumnType::kInt64);
  auto five = Expr::Literal(Value(int64_t{5}));
  auto six = Expr::Literal(Value(int64_t{6}));
  EXPECT_TRUE(Expr::Compare(CompareOp::kEq, a, five)->EvalPredicate(row));
  EXPECT_FALSE(Expr::Compare(CompareOp::kEq, a, six)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Compare(CompareOp::kNe, a, six)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Compare(CompareOp::kLt, a, six)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Compare(CompareOp::kLe, a, five)->EvalPredicate(row));
  EXPECT_FALSE(Expr::Compare(CompareOp::kGt, a, five)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Compare(CompareOp::kGe, a, five)->EvalPredicate(row));
}

TEST(ExprTest, BooleanConnectives) {
  Row row = MakeRow();
  auto t = Expr::Compare(CompareOp::kEq, Expr::Column(0, "a", ColumnType::kInt64),
                         Expr::Literal(Value(int64_t{5})));
  auto f = Expr::Compare(CompareOp::kEq, Expr::Column(0, "a", ColumnType::kInt64),
                         Expr::Literal(Value(int64_t{6})));
  EXPECT_TRUE(Expr::And({t, t})->EvalPredicate(row));
  EXPECT_FALSE(Expr::And({t, f})->EvalPredicate(row));
  EXPECT_TRUE(Expr::Or({f, t})->EvalPredicate(row));
  EXPECT_FALSE(Expr::Or({f, f})->EvalPredicate(row));
  EXPECT_TRUE(Expr::Not(f)->EvalPredicate(row));
  EXPECT_FALSE(Expr::Not(t)->EvalPredicate(row));
}

TEST(ExprTest, SingleChildAndOrCollapse) {
  auto t = Expr::Compare(CompareOp::kEq, Expr::Column(0, "a", ColumnType::kInt64),
                         Expr::Literal(Value(int64_t{5})));
  EXPECT_EQ(Expr::And({t})->kind(), ExprKind::kCompare);
  EXPECT_EQ(Expr::Or({t})->kind(), ExprKind::kCompare);
}

TEST(ExprTest, PrefixRendering) {
  auto pred = Expr::And(
      {Expr::Compare(CompareOp::kEq, Expr::Column(1, "dt", ColumnType::kString),
                     Expr::Literal(Value("1010"))),
       Expr::Compare(CompareOp::kEq,
                     Expr::Column(2, "memo_type", ColumnType::kString),
                     Expr::Literal(Value("pen")))});
  EXPECT_EQ(pred->ToPrefixString(),
            "AND(EQ(dt, '1010'), EQ(memo_type, 'pen'))");
  std::vector<std::string> tokens;
  pred->AppendPrefixTokens(&tokens);
  std::vector<std::string> expected = {"AND", "EQ",        "dt",   "'1010'",
                                       "EQ",  "memo_type", "'pen'"};
  EXPECT_EQ(tokens, expected);
}

TEST(ExprTest, HashAndEquality) {
  auto a = Expr::Compare(CompareOp::kLt, Expr::Column(0, "x", ColumnType::kInt64),
                         Expr::Literal(Value(int64_t{3})));
  auto b = Expr::Compare(CompareOp::kLt, Expr::Column(0, "x", ColumnType::kInt64),
                         Expr::Literal(Value(int64_t{3})));
  auto c = Expr::Compare(CompareOp::kLt, Expr::Column(0, "x", ColumnType::kInt64),
                         Expr::Literal(Value(int64_t{4})));
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_NE(a->Hash(), c->Hash());
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ExprTest, ShiftColumns) {
  auto pred = Expr::Compare(CompareOp::kEq,
                            Expr::Column(1, "x", ColumnType::kInt64),
                            Expr::Column(3, "y", ColumnType::kInt64));
  auto shifted = pred->ShiftColumns(2);
  EXPECT_EQ(shifted->children()[0]->column_index(), 3u);
  EXPECT_EQ(shifted->children()[1]->column_index(), 5u);
  // Names preserved.
  EXPECT_EQ(shifted->children()[0]->column_name(), "x");
}

TEST(ExprTest, RemapColumns) {
  auto pred = Expr::Compare(CompareOp::kEq,
                            Expr::Column(0, "old_a", ColumnType::kInt64),
                            Expr::Column(1, "old_b", ColumnType::kInt64));
  std::vector<size_t> mapping = {2, 0};
  std::vector<std::string> names = {"n0", "n1", "n2"};
  auto remapped = pred->RemapColumns(mapping, names);
  EXPECT_EQ(remapped->children()[0]->column_index(), 2u);
  EXPECT_EQ(remapped->children()[0]->column_name(), "n2");
  EXPECT_EQ(remapped->children()[1]->column_index(), 0u);
  EXPECT_EQ(remapped->children()[1]->column_name(), "n0");
}

TEST(ExprTest, ReferencedColumnsDedupedSorted) {
  auto pred = Expr::And(
      {Expr::Compare(CompareOp::kEq, Expr::Column(3, "c", ColumnType::kInt64),
                     Expr::Column(1, "a", ColumnType::kInt64)),
       Expr::Compare(CompareOp::kLt, Expr::Column(1, "a", ColumnType::kInt64),
                     Expr::Literal(Value(int64_t{5})))});
  std::vector<size_t> expected = {1, 3};
  EXPECT_EQ(ReferencedColumns(*pred), expected);
}

TEST(ExprTest, CompareOpNames) {
  EXPECT_STREQ(CompareOpName(CompareOp::kEq), "EQ");
  EXPECT_STREQ(CompareOpName(CompareOp::kNe), "NE");
  EXPECT_STREQ(CompareOpName(CompareOp::kLt), "LT");
  EXPECT_STREQ(CompareOpName(CompareOp::kGe), "GE");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kNe), "<>");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLe), "<=");
}

TEST(ExprTest, MixedTypeComparisonInPredicate) {
  Row row = MakeRow();
  // double column vs int literal compares numerically.
  auto c = Expr::Compare(CompareOp::kGt,
                         Expr::Column(2, "v", ColumnType::kDouble),
                         Expr::Literal(Value(int64_t{2})));
  EXPECT_TRUE(c->EvalPredicate(row));
}

}  // namespace
}  // namespace autoview
