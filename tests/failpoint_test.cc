#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "costmodel/fallback.h"
#include "costmodel/traditional.h"
#include "costmodel/wide_deep.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/view_store.h"
#include "nn/modules.h"
#include "nn/serialize.h"
#include "plan/builder.h"
#include "util/metrics.h"
#include "util/random.h"

namespace autoview {
namespace {

/// Every test must leave the process-wide registry disarmed: other test
/// binaries (and the determinism suites) rely on failpoints being off.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().Clear();
    GlobalRobustness().Reset();
  }
  void TearDown() override {
    Failpoints::Instance().Clear();
    GlobalRobustness().Reset();
  }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(Failpoints::Instance().enabled());
  EXPECT_EQ(Failpoints::Instance().Evaluate("viewstore.materialize"),
            FailAction::kNone);
  EXPECT_EQ(AV_FAILPOINT("wide_deep.infer"), FailAction::kNone);
  EXPECT_EQ(Failpoints::Instance().total_hits(), 0u);
}

TEST_F(FailpointTest, ConfigureParsesSpec) {
  ASSERT_TRUE(Failpoints::Instance()
                  .Configure("viewstore.materialize=error:0.5;"
                             "wide_deep.infer=nan:0.1;serialize.load=corrupt")
                  .ok());
  EXPECT_TRUE(Failpoints::Instance().enabled());
  // An unarmed site stays kNone even while others are armed.
  EXPECT_EQ(Failpoints::Instance().Evaluate("executor.scan"),
            FailAction::kNone);
  // Probability 1.0 (default) fires every time.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Failpoints::Instance().Evaluate("serialize.load"),
              FailAction::kCorrupt);
  }
  EXPECT_EQ(Failpoints::Instance().hits("serialize.load"), 5u);
  EXPECT_EQ(Failpoints::Instance().total_hits(), 5u);
}

TEST_F(FailpointTest, EmptySpecDisarms) {
  ASSERT_TRUE(Failpoints::Instance().Configure("a.site=error").ok());
  EXPECT_TRUE(Failpoints::Instance().enabled());
  ASSERT_TRUE(Failpoints::Instance().Configure("").ok());
  EXPECT_FALSE(Failpoints::Instance().enabled());
}

TEST_F(FailpointTest, MalformedSpecRejectedAndDisarmed) {
  for (const char* bad : {"no_equals", "site=", "site=banana",
                          "site=error:1.5", "site=error:-0.1",
                          "site=error:notanumber"}) {
    ASSERT_TRUE(Failpoints::Instance().Configure("other.site=error").ok());
    const Status status = Failpoints::Instance().Configure(bad);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_FALSE(Failpoints::Instance().enabled()) << bad;
  }
}

TEST_F(FailpointTest, ProbabilityRollsAreRoughlyCalibrated) {
  ASSERT_TRUE(Failpoints::Instance().Configure("coin.flip=error:0.5").ok());
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (Failpoints::Instance().Evaluate("coin.flip") == FailAction::kError) {
      ++fired;
    }
  }
  EXPECT_GT(fired, 300);
  EXPECT_LT(fired, 700);
  EXPECT_EQ(Failpoints::Instance().hits("coin.flip"),
            static_cast<uint64_t>(fired));
}

TEST_F(FailpointTest, RollsAreDeterministicAcrossReconfigure) {
  std::vector<int> first, second;
  for (auto* out : {&first, &second}) {
    ASSERT_TRUE(Failpoints::Instance().Configure("coin.flip=error:0.5").ok());
    for (int i = 0; i < 64; ++i) {
      out->push_back(
          Failpoints::Instance().Evaluate("coin.flip") == FailAction::kError);
    }
  }
  EXPECT_EQ(first, second);
}

TEST_F(FailpointTest, InjectedFaultsAreCounted) {
  ASSERT_TRUE(Failpoints::Instance().Configure("a.site=nan").ok());
  for (int i = 0; i < 3; ++i) Failpoints::Instance().Evaluate("a.site");
  EXPECT_EQ(GlobalRobustness().Read().faults_injected, 3u);
}

/// Fixture with a one-table database for the engine-level sites.
class FailpointEngineTest : public FailpointTest {
 protected:
  void SetUp() override {
    FailpointTest::SetUp();
    std::vector<Row> rows;
    for (int i = 0; i < 20; ++i) {
      rows.push_back({Value(int64_t{i}), Value("m" + std::to_string(i % 3))});
    }
    ASSERT_TRUE(db_.AddTable(TableSchema("t", {{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kString}}),
                             std::move(rows))
                    .ok());
    ASSERT_TRUE(db_.ComputeAllStats().ok());
  }

  PlanNodePtr MustBuild(const std::string& sql) {
    PlanBuilder builder(&db_.catalog());
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }

  Database db_;
};

TEST_F(FailpointEngineTest, MaterializeSiteInjectsError) {
  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  PlanNodePtr sub = MustBuild("select a from t where b = 'm0'");

  ASSERT_TRUE(
      Failpoints::Instance().Configure("viewstore.materialize=error").ok());
  auto r = store.Materialize(sub, exec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(store.size(), 0u);

  // Disarmed, the exact same call succeeds: the fault was injected, not
  // a real defect.
  Failpoints::Instance().Clear();
  EXPECT_TRUE(store.Materialize(sub, exec).ok());
}

TEST_F(FailpointEngineTest, ExecutorScanSiteInjectsError) {
  Executor exec(&db_);
  PlanNodePtr plan = MustBuild("select * from t");
  ASSERT_TRUE(Failpoints::Instance().Configure("executor.scan=error").ok());
  EXPECT_FALSE(exec.Execute(*plan).ok());
  Failpoints::Instance().Clear();
  EXPECT_TRUE(exec.Execute(*plan).ok());
}

TEST_F(FailpointEngineTest, WideDeepNanFallsBackToTraditional) {
  WideDeepEstimator wide_deep(&db_.catalog(), WideDeepOptions::Full());
  ASSERT_TRUE(
      Failpoints::Instance().Configure("wide_deep.infer=nan:1.0").ok());

  CostSample sample;
  sample.query = MustBuild("select * from t");
  sample.view = MustBuild("select a from t where b = 'm0'");
  sample.tables = {"t"};
  sample.query_cost = 2.0;
  sample.subquery_cost = 1.0;
  EXPECT_TRUE(std::isnan(wide_deep.Estimate(sample)));

  // The degradation wrapper turns that NaN into a finite traditional
  // prediction and counts the substitution.
  TraditionalEstimator traditional(&db_.catalog(), Pricing{});
  FallbackEstimator guarded(&wide_deep, &traditional);
  const double estimate = guarded.Estimate(sample);
  EXPECT_TRUE(std::isfinite(estimate));
  EXPECT_EQ(guarded.fallback_calls(), 1u);
  EXPECT_GE(GlobalRobustness().Read().estimator_fallbacks, 1u);

  const auto batch = guarded.EstimateBatch({sample, sample, sample});
  ASSERT_EQ(batch.size(), 3u);
  for (double v : batch) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(guarded.fallback_calls(), 4u);
}

TEST_F(FailpointTest, SerializeLoadSiteCorruptsModel) {
  Rng rng(5);
  nn::Mlp mlp({3, 4, 1}, &rng);
  const std::string path =
      std::string(::testing::TempDir()) + "/failpoint_model.avnn";
  ASSERT_TRUE(nn::SaveParameters(mlp.Parameters(), path).ok());

  ASSERT_TRUE(Failpoints::Instance().Configure("serialize.load=corrupt").ok());
  auto params = mlp.Parameters();
  const Status status = nn::LoadParameters(path, &params);
  EXPECT_EQ(status.code(), StatusCode::kParseError);

  Failpoints::Instance().Clear();
  EXPECT_TRUE(nn::LoadParameters(path, &params).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace autoview
