// Shared random-instance generators for the property/determinism test
// suites. Everything here is seed-deterministic so suites can assert
// bit-identical results across configurations (e.g. thread counts).

#pragma once

#include "ilp/problem.h"
#include "util/random.h"

namespace autoview {
namespace testing {

/// A random MVS instance: dense-ish benefit matrix, uniform overheads,
/// symmetric sparse overlap flags.
inline MvsProblem RandomProblem(size_t nq, size_t nz, uint64_t seed) {
  Rng rng(seed);
  MvsProblem p;
  p.overhead.resize(nz);
  p.frequency.assign(nz, 0);
  for (auto& o : p.overhead) o = rng.Uniform(0.5, 5.0);
  p.benefit.assign(nq, std::vector<double>(nz, 0.0));
  for (auto& row : p.benefit) {
    for (size_t j = 0; j < nz; ++j) {
      if (rng.Bernoulli(0.35)) {
        row[j] = rng.Uniform(0.1, 3.0);
        ++p.frequency[j];
      }
    }
  }
  p.overlap.assign(nz, std::vector<bool>(nz, false));
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = j + 1; k < nz; ++k) {
      if (rng.Bernoulli(0.2)) p.overlap[j][k] = p.overlap[k][j] = true;
    }
  }
  return p;
}

}  // namespace testing
}  // namespace autoview
