// Shared random-instance generators for the property/determinism test
// suites. Everything here is seed-deterministic so suites can assert
// bit-identical results across configurations (e.g. thread counts).

#pragma once

#include "ilp/problem.h"
#include "util/random.h"

namespace autoview {
namespace testing {

/// A random MVS instance: dense-ish benefit matrix, uniform overheads,
/// symmetric sparse overlap flags.
inline MvsProblem RandomProblem(size_t nq, size_t nz, uint64_t seed) {
  Rng rng(seed);
  MvsProblem p;
  p.overhead.resize(nz);
  p.frequency.assign(nz, 0);
  for (auto& o : p.overhead) o = rng.Uniform(0.5, 5.0);
  p.benefit.assign(nq, std::vector<double>(nz, 0.0));
  for (auto& row : p.benefit) {
    for (size_t j = 0; j < nz; ++j) {
      if (rng.Bernoulli(0.35)) {
        row[j] = rng.Uniform(0.1, 3.0);
        ++p.frequency[j];
      }
    }
  }
  p.overlap.assign(nz, std::vector<bool>(nz, false));
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = j + 1; k < nz; ++k) {
      if (rng.Bernoulli(0.2)) p.overlap[j][k] = p.overlap[k][j] = true;
    }
  }
  return p;
}

/// A sparse MVS instance (default ~5% nonzero benefits, the regime the
/// incremental selection engine targets). `negative_fraction` of the
/// nonzero cells get a negative benefit, exercising the nonzero-but-
/// not-positive distinction between the inverted index (affected-query
/// tests) and the CSR rows (solver/utility support).
inline MvsProblem RandomSparseProblem(size_t nq, size_t nz, uint64_t seed,
                                      double density = 0.05,
                                      double negative_fraction = 0.0) {
  Rng rng(seed);
  MvsProblem p;
  p.overhead.resize(nz);
  p.frequency.assign(nz, 0);
  for (auto& o : p.overhead) o = rng.Uniform(0.5, 5.0);
  p.benefit.assign(nq, std::vector<double>(nz, 0.0));
  for (auto& row : p.benefit) {
    for (size_t j = 0; j < nz; ++j) {
      if (!rng.Bernoulli(density)) continue;
      const double magnitude = rng.Uniform(0.1, 3.0);
      const bool negative =
          negative_fraction > 0.0 && rng.Bernoulli(negative_fraction);
      row[j] = negative ? -magnitude : magnitude;
      if (!negative) ++p.frequency[j];
    }
  }
  p.overlap.assign(nz, std::vector<bool>(nz, false));
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = j + 1; k < nz; ++k) {
      if (rng.Bernoulli(0.05)) p.overlap[j][k] = p.overlap[k][j] = true;
    }
  }
  return p;
}

}  // namespace testing
}  // namespace autoview
