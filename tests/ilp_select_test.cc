#include <gtest/gtest.h>

#include "ilp/branch_and_bound.h"
#include "ilp/problem.h"
#include "select/iterview.h"
#include "select/rlview.h"
#include "select/selector.h"
#include "util/random.h"

namespace autoview {
namespace {

/// Small hand-crafted instance:
///   views: v0 (cheap, widely useful), v1 (expensive, one user),
///          v2 (overlaps v0, medium), v3 (useless: overhead > benefit).
MvsProblem TinyProblem() {
  MvsProblem p;
  p.overhead = {1.0, 5.0, 2.0, 4.0};
  p.benefit = {
      {3.0, 0.0, 2.5, 0.5},
      {2.0, 6.0, 0.0, 0.5},
      {4.0, 0.0, 1.0, 0.5},
  };
  p.overlap.assign(4, std::vector<bool>(4, false));
  p.overlap[0][2] = p.overlap[2][0] = true;
  p.frequency = {3, 1, 2, 3};
  return p;
}

/// Random instance generator for property-style sweeps.
MvsProblem RandomProblem(size_t nq, size_t nz, uint64_t seed) {
  Rng rng(seed);
  MvsProblem p;
  p.overhead.resize(nz);
  p.frequency.assign(nz, 0);
  for (auto& o : p.overhead) o = rng.Uniform(0.5, 5.0);
  p.benefit.assign(nq, std::vector<double>(nz, 0.0));
  for (size_t i = 0; i < nq; ++i) {
    for (size_t j = 0; j < nz; ++j) {
      if (rng.Bernoulli(0.4)) {
        p.benefit[i][j] = rng.Uniform(0.1, 3.0);
        ++p.frequency[j];
      }
    }
  }
  p.overlap.assign(nz, std::vector<bool>(nz, false));
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = j + 1; k < nz; ++k) {
      if (rng.Bernoulli(0.15)) p.overlap[j][k] = p.overlap[k][j] = true;
    }
  }
  return p;
}

/// Brute force over all 2^|Z| z assignments with exact Y-Opt.
double BruteForceOptimal(const MvsProblem& p) {
  YOptSolver yopt(&p);
  const size_t nz = p.num_views();
  double best = 0.0;
  for (uint64_t mask = 0; mask < (1ULL << nz); ++mask) {
    std::vector<bool> z(nz);
    for (size_t j = 0; j < nz; ++j) z[j] = (mask >> j) & 1;
    best = std::max(best, yopt.UtilityOf(z));
  }
  return best;
}

TEST(MvsProblemTest, ValidateCatchesBadShapes) {
  MvsProblem p = TinyProblem();
  EXPECT_TRUE(p.Validate().ok());
  p.overlap[1][2] = true;  // asymmetric
  EXPECT_FALSE(p.Validate().ok());
  p.overlap[1][2] = false;
  p.overlap[0][0] = true;  // diagonal
  EXPECT_FALSE(p.Validate().ok());
  p.overlap[0][0] = false;
  p.benefit[0].pop_back();
  EXPECT_FALSE(p.Validate().ok());
}

TEST(MvsProblemTest, UtilityAndFeasibility) {
  MvsProblem p = TinyProblem();
  std::vector<bool> z = {true, false, false, false};
  std::vector<std::vector<bool>> y = {
      {true, false, false, false},
      {true, false, false, false},
      {true, false, false, false},
  };
  EXPECT_TRUE(IsFeasible(p, z, y));
  EXPECT_NEAR(EvaluateUtility(p, z, y), 3 + 2 + 4 - 1, 1e-12);
  // Using an unmaterialized view is infeasible.
  y[0][1] = true;
  EXPECT_FALSE(IsFeasible(p, z, y));
  y[0][1] = false;
  // Using overlapping views together is infeasible.
  z[2] = true;
  y[0][2] = true;
  EXPECT_FALSE(IsFeasible(p, z, y));
}

TEST(YOptTest, PicksNonOverlappingOptimum) {
  MvsProblem p = TinyProblem();
  YOptSolver yopt(&p);
  std::vector<bool> all(4, true);
  // Query 0: v0 (3.0) and v2 (2.5) overlap; v0+v3 = 3.5 beats v2+v3 = 3.0.
  std::vector<bool> y0 = yopt.SolveQuery(0, all);
  EXPECT_TRUE(y0[0]);
  EXPECT_FALSE(y0[2]);
  EXPECT_TRUE(y0[3]);
  // Query 1: v0 + v1 + v3 all compatible.
  std::vector<bool> y1 = yopt.SolveQuery(1, all);
  EXPECT_TRUE(y1[0]);
  EXPECT_TRUE(y1[1]);
}

TEST(YOptTest, RespectsZ) {
  MvsProblem p = TinyProblem();
  YOptSolver yopt(&p);
  std::vector<bool> none(4, false);
  for (const auto& row : yopt.SolveAll(none)) {
    for (bool used : row) EXPECT_FALSE(used);
  }
}

TEST(YOptTest, MatchesBruteForceOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    MvsProblem p = RandomProblem(4, 8, seed);
    YOptSolver yopt(&p);
    std::vector<bool> all(8, true);
    for (size_t i = 0; i < p.num_queries(); ++i) {
      std::vector<bool> row = yopt.SolveQuery(i, all);
      // Brute force the per-query optimum.
      double best = 0.0;
      for (uint64_t mask = 0; mask < 256; ++mask) {
        double total = 0.0;
        bool ok = true;
        for (size_t j = 0; j < 8 && ok; ++j) {
          if (!((mask >> j) & 1)) continue;
          if (p.benefit[i][j] <= 0) {
            ok = false;
            break;
          }
          for (size_t k = j + 1; k < 8; ++k) {
            if (((mask >> k) & 1) && p.overlap[j][k]) {
              ok = false;
              break;
            }
          }
          total += p.benefit[i][j];
        }
        if (ok) best = std::max(best, total);
      }
      double got = 0.0;
      for (size_t j = 0; j < 8; ++j) {
        if (row[j]) got += p.benefit[i][j];
      }
      EXPECT_NEAR(got, best, 1e-9) << "seed " << seed << " query " << i;
    }
  }
}

TEST(BranchAndBoundTest, SolvesTinyExactly) {
  MvsProblem p = TinyProblem();
  BranchAndBoundSolver solver;
  auto result = solver.Solve(p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result.value().utility, BruteForceOptimal(p), 1e-9);
  EXPECT_TRUE(IsFeasible(p, result.value().z, result.value().y));
}

TEST(BranchAndBoundTest, MatchesBruteForceOnRandomInstances) {
  for (uint64_t seed = 20; seed < 26; ++seed) {
    MvsProblem p = RandomProblem(5, 10, seed);
    BranchAndBoundSolver solver;
    auto result = solver.Solve(p);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result.value().utility, BruteForceOptimal(p), 1e-9)
        << "seed " << seed;
  }
}

TEST(BranchAndBoundTest, BudgetExhaustionReported) {
  MvsProblem p = RandomProblem(20, 24, 7);
  BranchAndBoundSolver::Options opts;
  opts.max_nodes = 50;
  BranchAndBoundSolver solver(opts);
  auto result = solver.Solve(p);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(TopkTest, StrategiesRankDifferently) {
  MvsProblem p = TinyProblem();
  EXPECT_EQ(TopkSelector(TopkStrategy::kOverhead, 1).Ranking(p)[0], 0u);
  EXPECT_EQ(TopkSelector(TopkStrategy::kBenefit, 1).Ranking(p)[0], 0u);
  // v3 ties v0 on frequency (3) but v0 comes first (stable order).
  EXPECT_EQ(TopkSelector(TopkStrategy::kFrequency, 1).Ranking(p)[0], 0u);
  // Normalized: v0 has ratio (9-1)/1 = 8, best.
  EXPECT_EQ(TopkSelector(TopkStrategy::kNormalized, 1).Ranking(p)[0], 0u);
}

TEST(TopkTest, SolutionsAlwaysFeasible) {
  MvsProblem p = RandomProblem(6, 9, 3);
  for (TopkStrategy strategy :
       {TopkStrategy::kFrequency, TopkStrategy::kOverhead,
        TopkStrategy::kBenefit, TopkStrategy::kNormalized}) {
    for (size_t k = 0; k <= 9; ++k) {
      TopkSelector selector(strategy, k);
      auto result = selector.Select(p);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(IsFeasible(p, result.value().z, result.value().y));
    }
  }
}

TEST(TopkTest, CurveRisesThenFalls) {
  // With many useful-but-cheap views and some harmful ones, the k-sweep
  // should peak strictly inside the range (the Fig. 9 shape).
  MvsProblem p = RandomProblem(12, 10, 11);
  // Make two views clearly harmful.
  p.overhead[0] = 100.0;
  p.overhead[1] = 80.0;
  std::vector<double> curve =
      TopkUtilityCurve(p, TopkStrategy::kNormalized, 1);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_EQ(curve[0], 0.0);
  double peak = *std::max_element(curve.begin(), curve.end());
  EXPECT_GT(peak, curve.back());
  EXPECT_GT(peak, 0.0);
}

TEST(IterViewTest, FlipProbabilityBehavesPerEq3) {
  MvsProblem p = TinyProblem();
  std::vector<double> b_cur = {9.0, 6.0, 0.0, 0.0};
  // Selected expensive view with zero current benefit is flip-prone.
  std::vector<bool> z = {true, true, true, true};
  double p_useless = internal::FlipProbability(p, b_cur, 3, z);
  double p_useful = internal::FlipProbability(p, b_cur, 0, z);
  EXPECT_GT(p_useless, p_useful);
  // Unselected cheap high-benefit view is flip-prone.
  std::vector<bool> none = {false, false, false, false};
  std::vector<double> zero(4, 0.0);
  double p_good = internal::FlipProbability(p, zero, 0, none);
  double p_bad = internal::FlipProbability(p, zero, 3, none);
  EXPECT_GT(p_good, p_bad);
}

TEST(IterViewTest, FindsGoodSolutions) {
  MvsProblem p = TinyProblem();
  IterViewSelector iterview = IterViewSelector::IterView(60, 5);
  auto result = iterview.Select(p);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsFeasible(p, result.value().z, result.value().y));
  // Optimal tiny utility computed by brute force.
  const double opt = BruteForceOptimal(p);
  EXPECT_GE(result.value().utility, 0.75 * opt);
  EXPECT_EQ(iterview.utility_trace().size(), 61u);
}

TEST(IterViewTest, TraceOscillates) {
  // IterView has no memory: its trace should not be monotone.
  MvsProblem p = RandomProblem(10, 12, 9);
  IterViewSelector iterview = IterViewSelector::IterView(80, 3);
  ASSERT_TRUE(iterview.Select(p).ok());
  const auto& trace = iterview.utility_trace();
  size_t drops = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    if (trace[i] < trace[i - 1] - 1e-12) ++drops;
  }
  EXPECT_GT(drops, 0u);
}

TEST(BigSubTest, FreezesSelections) {
  MvsProblem p = RandomProblem(10, 12, 9);
  IterViewSelector bigsub = IterViewSelector::BigSub(80, 3);
  auto result = bigsub.Select(p);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(bigsub.name(), "BigSub");
  EXPECT_TRUE(IsFeasible(p, result.value().z, result.value().y));
}

TEST(RLViewTest, FindsNearOptimalOnTiny) {
  MvsProblem p = TinyProblem();
  RLViewSelector::Options opts;
  opts.init_iterations = 5;
  opts.episodes = 15;
  RLViewSelector rlview(opts);
  auto result = rlview.Select(p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsFeasible(p, result.value().z, result.value().y));
  EXPECT_GE(result.value().utility, 0.9 * BruteForceOptimal(p));
}

TEST(RLViewTest, BeatsOrMatchesIterViewOnRandom) {
  // Across seeds, RLView's best utility should be at least IterView's
  // (both see the same warm start; RL explores further with memory).
  size_t wins = 0, ties = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    MvsProblem p = RandomProblem(12, 10, seed + 100);
    IterViewSelector iterview = IterViewSelector::IterView(40, seed);
    auto iter_result = iterview.Select(p);
    RLViewSelector::Options opts;
    opts.init_iterations = 10;
    opts.episodes = 10;
    opts.seed = seed;
    RLViewSelector rlview(opts);
    auto rl_result = rlview.Select(p);
    ASSERT_TRUE(iter_result.ok() && rl_result.ok());
    if (rl_result.value().utility > iter_result.value().utility + 1e-9) {
      ++wins;
    } else if (rl_result.value().utility >=
               iter_result.value().utility - 1e-9) {
      ++ties;
    }
  }
  EXPECT_GE(wins + ties, 3u);
}

TEST(RLViewTest, DuelingAndTargetNetworkVariants) {
  MvsProblem p = TinyProblem();
  for (const auto& [dueling, sync] :
       std::vector<std::pair<bool, size_t>>{{true, 0}, {false, 8}, {true, 8}}) {
    RLViewSelector::Options opts;
    opts.init_iterations = 5;
    opts.episodes = 10;
    opts.dueling = dueling;
    opts.target_sync_every = sync;
    RLViewSelector rlview(opts);
    auto result = rlview.Select(p);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(IsFeasible(p, result.value().z, result.value().y));
    EXPECT_GE(result.value().utility, 0.75 * BruteForceOptimal(p));
  }
}

TEST(RLViewTest, EmptyProblem) {
  MvsProblem p;
  RLViewSelector rlview;
  auto result = rlview.Select(p);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().utility, 0.0);
}

TEST(RLViewTest, LateTraceIsMoreStableThanIterView) {
  // The headline Fig. 10 claim: RLView converges while IterView keeps
  // oscillating. Compare the variance of the last third of the traces.
  MvsProblem p = RandomProblem(15, 12, 77);
  IterViewSelector iterview = IterViewSelector::IterView(90, 7);
  ASSERT_TRUE(iterview.Select(p).ok());
  RLViewSelector::Options opts;
  opts.init_iterations = 10;
  opts.episodes = 20;
  opts.seed = 7;
  RLViewSelector rlview(opts);
  ASSERT_TRUE(rlview.Select(p).ok());

  auto tail_variance = [](const std::vector<double>& trace) {
    const size_t start = trace.size() * 2 / 3;
    double mean = 0.0;
    for (size_t i = start; i < trace.size(); ++i) mean += trace[i];
    const double n = static_cast<double>(trace.size() - start);
    mean /= n;
    double var = 0.0;
    for (size_t i = start; i < trace.size(); ++i) {
      var += (trace[i] - mean) * (trace[i] - mean);
    }
    return var / n;
  };
  EXPECT_LE(tail_variance(rlview.utility_trace()),
            tail_variance(iterview.utility_trace()) + 1e-9);
}

}  // namespace
}  // namespace autoview
