// Tests for the throughput load generator (src/bench/loadgen.*).
//
// The deterministic properties under test: (1) LoadGenConfig round-trips
// exactly through ToArgs + ParseLoadGenArgs; (2) nearest-rank
// percentiles match hand-computed fixtures; (3) the request schedule —
// and a scheduled run's latency *count* — depend only on the config,
// never on the executing thread count; (4) the CSV/JSON writers emit
// byte-stable output (golden strings).

#include "bench/loadgen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace autoview {
namespace {

// ---------------------------------------------------------------------
// Config parsing.

TEST(LoadGenConfigTest, DefaultsRoundTrip) {
  const LoadGenConfig config;
  const auto parsed = ParseLoadGenArgs(ToArgs(config));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == config);
}

TEST(LoadGenConfigTest, EveryFieldRoundTrips) {
  LoadGenConfig config;
  config.clients = 3;
  config.warmup_s = 0.25;
  config.measure_s = 1.75;
  config.seed = 987654321;
  config.workload = "WK2";
  config.scale = 0.125;
  config.full = true;
  config.max_requests = 17;
  config.select_iterations = 11;
  config.select_timeout_s = 2.5;
  config.view_budget_bytes = 8192;
  config.drift = "shift";
  config.online = true;
  config.advisor_epoch = 9;
  config.fast_path = false;
  config.csv_file = "out.csv";
  config.json_file = "out.json";
  const auto parsed = ParseLoadGenArgs(ToArgs(config));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == config);
}

TEST(LoadGenConfigTest, ParsesIndividualFlags) {
  const auto parsed = ParseLoadGenArgs(
      {"--clients=2", "--workload=WK2", "--full", "--seed=7"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().clients, 2);
  EXPECT_EQ(parsed.value().workload, "WK2");
  EXPECT_TRUE(parsed.value().full);
  EXPECT_EQ(parsed.value().seed, 7u);
  // Untouched fields keep their defaults.
  EXPECT_EQ(parsed.value().select_iterations, LoadGenConfig().select_iterations);
}

TEST(LoadGenConfigTest, RejectsUnknownAndMalformedFlags) {
  EXPECT_FALSE(ParseLoadGenArgs({"--bogus=1"}).ok());
  EXPECT_FALSE(ParseLoadGenArgs({"clients=2"}).ok());
  EXPECT_FALSE(ParseLoadGenArgs({"--clients=abc"}).ok());
  EXPECT_FALSE(ParseLoadGenArgs({"--clients=0"}).ok());
  EXPECT_FALSE(ParseLoadGenArgs({"--workload=JOB"}).ok());
  EXPECT_FALSE(ParseLoadGenArgs({"--measure_s=fast"}).ok());
  // Strict parsing: the strtoull family accepted these silently.
  EXPECT_FALSE(ParseLoadGenArgs({"--seed=-1"}).ok());
  EXPECT_FALSE(ParseLoadGenArgs({"--max_requests=12x"}).ok());
  // Drift validation: known modes only, and only in scheduled mode.
  EXPECT_FALSE(ParseLoadGenArgs({"--drift=sideways"}).ok());
  EXPECT_FALSE(ParseLoadGenArgs({"--drift=churn"}).ok());  // no max_requests
  EXPECT_TRUE(
      ParseLoadGenArgs({"--drift=churn", "--max_requests=8"}).ok());
  EXPECT_FALSE(ParseLoadGenArgs({"--advisor_epoch=0"}).ok());
}

// ---------------------------------------------------------------------
// Percentile fixture.

TEST(PercentileTest, NearestRankFixture) {
  // Canonical nearest-rank example: N=5.
  const std::vector<double> v = {15, 20, 35, 40, 50};
  EXPECT_EQ(Percentile(v, 5), 15);
  EXPECT_EQ(Percentile(v, 30), 20);
  EXPECT_EQ(Percentile(v, 40), 20);
  EXPECT_EQ(Percentile(v, 50), 35);
  EXPECT_EQ(Percentile(v, 100), 50);
}

TEST(PercentileTest, EdgeCases) {
  EXPECT_EQ(Percentile({}, 50), 0);
  EXPECT_EQ(Percentile({3.5}, 0), 3.5);
  EXPECT_EQ(Percentile({3.5}, 50), 3.5);
  EXPECT_EQ(Percentile({3.5}, 100), 3.5);
  const std::vector<double> two = {1, 2};
  EXPECT_EQ(Percentile(two, 50), 1);
  EXPECT_EQ(Percentile(two, 51), 2);
  EXPECT_EQ(Percentile(two, 99), 2);
}

// ---------------------------------------------------------------------
// Deterministic schedule.

TEST(ScheduleTest, DependsOnlyOnConfig) {
  const auto a = BuildSchedule(/*seed=*/42, /*clients=*/4, /*per_client=*/32,
                               /*num_queries=*/100);
  const auto b = BuildSchedule(42, 4, 32, 100);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);
  for (const auto& client : a) {
    ASSERT_EQ(client.size(), 32u);
    for (size_t qi : client) EXPECT_LT(qi, 100u);
  }
  // Distinct seeds and distinct client streams give distinct schedules.
  EXPECT_NE(a, BuildSchedule(43, 4, 32, 100));
  EXPECT_NE(a[0], a[1]);
}

TEST(ScheduleTest, DriftModesAreDeterministicAndInRange) {
  for (const std::string drift : {"churn", "shift", "adhoc"}) {
    const auto a = BuildSchedule(42, 4, 32, 100, drift);
    EXPECT_EQ(a, BuildSchedule(42, 4, 32, 100, drift)) << drift;
    ASSERT_EQ(a.size(), 4u);
    for (const auto& client : a) {
      ASSERT_EQ(client.size(), 32u);
      for (size_t qi : client) EXPECT_LT(qi, 100u) << drift;
    }
    // Drift reshapes the request mix relative to the stationary draw.
    EXPECT_NE(a, BuildSchedule(42, 4, 32, 100)) << drift;
  }
}

TEST(ScheduleTest, ChurnRotatesThroughQuarters) {
  // One client, 64 requests over 100 queries: requests [p*16, (p+1)*16)
  // must come from quarter p of the query space.
  const auto schedule = BuildSchedule(9, 1, 64, 100, "churn");
  ASSERT_EQ(schedule.size(), 1u);
  ASSERT_EQ(schedule[0].size(), 64u);
  for (size_t n = 0; n < 64; ++n) {
    const size_t phase = std::min<size_t>(3, 4 * n / 64);
    EXPECT_GE(schedule[0][n], phase * 100 / 4) << n;
    EXPECT_LT(schedule[0][n], (phase + 1) * 100 / 4) << n;
  }
}

TEST(ScheduleTest, MultisetStableAcrossThreadCounts) {
  // The schedule is precomputed; executing it on 1 thread or N threads
  // must touch the same multiset of queries. Simulate both executions
  // by counting, single-threaded vs via ParallelFor.
  const auto schedule = BuildSchedule(7, 8, 64, 50);

  std::map<size_t, size_t> sequential;
  for (const auto& client : schedule) {
    for (size_t qi : client) ++sequential[qi];
  }

  ThreadPool pool(4);
  std::vector<std::map<size_t, size_t>> partial(schedule.size());
  pool.ParallelFor(0, schedule.size(), [&](size_t c) {
    for (size_t qi : schedule[c]) ++partial[c][qi];
  });
  std::map<size_t, size_t> parallel;
  for (const auto& m : partial) {
    for (const auto& [qi, n] : m) parallel[qi] += n;
  }
  EXPECT_EQ(sequential, parallel);
}

// ---------------------------------------------------------------------
// Scheduled end-to-end runs: same request count for any thread count.

TEST(LoadGenRunTest, ScheduledRunIsDeterministicInRequestCount) {
  LoadGenConfig config;
  config.workload = "WK1";
  config.scale = 0.15;
  config.max_requests = 6;  // deterministic mode
  config.select_iterations = 20;
  config.select_timeout_s = 10.0;

  config.clients = 1;
  const auto one = RunLoadGen(config);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(one.value().requests, 6u);

  config.clients = 4;
  const auto four = RunLoadGen(config);
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  EXPECT_EQ(four.value().requests, 24u);

  // Pipeline-shape fields do not depend on the client count.
  EXPECT_EQ(one.value().num_queries, four.value().num_queries);
  EXPECT_EQ(one.value().num_candidates, four.value().num_candidates);
  EXPECT_EQ(one.value().num_selected, four.value().num_selected);
  EXPECT_EQ(one.value().select_utility, four.value().select_utility);
  EXPECT_EQ(one.value().csr_bytes, four.value().csr_bytes);
}

TEST(LoadGenRunTest, BudgetedStoreServesEveryRequestWithinBudget) {
  LoadGenConfig config;
  config.workload = "WK1";
  config.scale = 0.15;
  config.max_requests = 6;
  config.select_iterations = 20;
  config.select_timeout_s = 10.0;
  config.clients = 2;
  config.view_budget_bytes = 1;  // nothing fits: every view is rejected

  const auto run = RunLoadGen(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // The store respected the budget and every query still succeeded
  // (evicted/rejected views degrade to base-table serving).
  EXPECT_LE(run.value().store_bytes, config.view_budget_bytes);
  EXPECT_EQ(run.value().store_views, 0u);
  EXPECT_EQ(run.value().failed_requests, 0u);
  EXPECT_EQ(run.value().requests, 12u);
}

TEST(LoadGenRunTest, OnlineModeReselectsAndSwapsWhileServing) {
  LoadGenConfig config;
  config.workload = "WK1";
  config.scale = 0.15;
  config.max_requests = 8;
  config.clients = 2;
  config.select_iterations = 15;
  config.select_timeout_s = 10.0;
  config.online = true;
  config.advisor_epoch = 4;
  config.drift = "churn";

  const auto run = RunLoadGen(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const LoadGenResult& r = run.value();
  EXPECT_TRUE(r.online);
  EXPECT_EQ(r.drift, "churn");
  EXPECT_EQ(r.requests, 16u);
  EXPECT_EQ(r.failed_requests, 0u);
  // Every request was ingested; 16 ingests at epoch 4 re-select and
  // hot-swap at least once while the clients keep serving from pins.
  EXPECT_EQ(r.ingested, 16u);
  EXPECT_GT(r.reselections, 0u);
  EXPECT_EQ(r.swaps_committed, r.reselections);
}

TEST(LoadGenRunTest, FastPathMatchesOracleAndBreaksDownPhases) {
  LoadGenConfig config;
  config.workload = "WK1";
  config.scale = 0.15;
  config.max_requests = 6;
  config.clients = 2;
  config.select_iterations = 20;
  config.select_timeout_s = 10.0;

  config.fast_path = true;
  const auto fast = RunLoadGen(config);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  config.fast_path = false;
  const auto oracle = RunLoadGen(config);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  // Same pipeline, same schedule, same answers — only the serving
  // mechanism differs.
  EXPECT_TRUE(fast.value().fast_path);
  EXPECT_FALSE(oracle.value().fast_path);
  EXPECT_EQ(fast.value().requests, 12u);
  EXPECT_EQ(oracle.value().requests, 12u);
  EXPECT_EQ(fast.value().failed_requests, 0u);
  EXPECT_EQ(oracle.value().failed_requests, 0u);
  EXPECT_EQ(fast.value().num_selected, oracle.value().num_selected);
  EXPECT_EQ(fast.value().select_utility, oracle.value().select_utility);

  // The fast path consulted the rewrite cache once per request; the
  // oracle path never touches it.
  EXPECT_EQ(fast.value().rewrite_cache_hits + fast.value().rewrite_cache_misses,
            12u);
  EXPECT_GT(fast.value().rewrite_cache_hits, 0u);
  EXPECT_EQ(oracle.value().rewrite_cache_hits, 0u);
  EXPECT_EQ(oracle.value().rewrite_cache_misses, 0u);

  // Phase breakdown covers the same requests as the end-to-end numbers.
  for (const auto* r : {&fast.value(), &oracle.value()}) {
    EXPECT_GT(r->execute_p50_ms, 0.0);
    EXPECT_LE(r->parse_p50_ms, r->parse_p99_ms);
    EXPECT_LE(r->rewrite_p50_ms, r->rewrite_p99_ms);
    EXPECT_LE(r->execute_p50_ms, r->execute_p99_ms);
    EXPECT_LE(r->parse_p99_ms + r->rewrite_p99_ms + r->execute_p99_ms,
              3 * r->p99_ms + 1.0);
  }
}

// ---------------------------------------------------------------------
// Golden CSV/JSON.

LoadGenResult FixtureResult() {
  LoadGenResult r;
  r.workload = "WK1";
  r.mode = "scaled";
  r.num_queries = 48;
  r.num_tables = 24;
  r.num_candidates = 6;
  r.num_selected = 3;
  r.clients = 4;
  r.seed = 12345;
  r.requests = 80;
  r.elapsed_s = 0.0625;
  r.qps = 1280.0;
  r.p50_ms = 0.5;
  r.p95_ms = 1.25;
  r.p99_ms = 2.5;
  r.mean_ms = 0.625;
  r.csr_shards = 2;
  r.csr_bytes = 150;
  r.peak_rss_mb = 10.5;
  r.select_utility = 0.0625;
  r.select_timed_out = false;
  r.view_budget_bytes = 65536;
  r.store_bytes = 4096;
  r.store_views = 3;
  r.evictions = 2;
  r.rewrite_fallbacks = 1;
  r.failed_requests = 0;
  r.drift = "churn";
  r.online = true;
  r.ingested = 80;
  r.reselections = 5;
  r.swaps_committed = 5;
  r.fast_path = true;
  r.parse_p50_ms = 0.125;
  r.parse_p95_ms = 0.25;
  r.parse_p99_ms = 0.375;
  r.rewrite_p50_ms = 0.0625;
  r.rewrite_p95_ms = 0.125;
  r.rewrite_p99_ms = 0.1875;
  r.execute_p50_ms = 0.25;
  r.execute_p95_ms = 0.75;
  r.execute_p99_ms = 1.5;
  r.rewrite_cache_hits = 70;
  r.rewrite_cache_misses = 10;
  return r;
}

TEST(LoadGenWriterTest, GoldenJson) {
  const std::string expected =
      "{\n"
      "  \"benchmark\": \"autoview_throughput\",\n"
      "  \"results\": [\n"
      "    {\"workload\": \"WK1\", \"mode\": \"scaled\", \"queries\": 48, "
      "\"tables\": 24, \"candidates\": 6, \"selected\": 3, \"clients\": 4, "
      "\"seed\": 12345, \"requests\": 80, \"elapsed_s\": 0.062, "
      "\"qps\": 1280.00, \"p50_ms\": 0.500, \"p95_ms\": 1.250, "
      "\"p99_ms\": 2.500, \"mean_ms\": 0.625, \"csr_shards\": 2, "
      "\"csr_bytes\": 150, \"peak_rss_mb\": 10.5, "
      "\"select_utility\": 0.0625, \"select_timed_out\": false, "
      "\"view_budget_bytes\": 65536, \"store_bytes\": 4096, "
      "\"store_views\": 3, \"evictions\": 2, "
      "\"rewrite_fallbacks\": 1, \"failed_requests\": 0, "
      "\"drift\": \"churn\", \"online\": true, \"ingested\": 80, "
      "\"reselections\": 5, \"swaps_committed\": 5, "
      "\"fast_path\": true, "
      "\"parse_p50_ms\": 0.125, \"parse_p95_ms\": 0.250, "
      "\"parse_p99_ms\": 0.375, \"rewrite_p50_ms\": 0.062, "
      "\"rewrite_p95_ms\": 0.125, \"rewrite_p99_ms\": 0.188, "
      "\"execute_p50_ms\": 0.250, \"execute_p95_ms\": 0.750, "
      "\"execute_p99_ms\": 1.500, \"rewrite_cache_hits\": 70, "
      "\"rewrite_cache_misses\": 10}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(ThroughputJson({FixtureResult()}), expected);
}

TEST(LoadGenWriterTest, GoldenCsv) {
  const std::string expected =
      "workload,mode,queries,tables,candidates,selected,clients,seed,"
      "requests,elapsed_s,qps,p50_ms,p95_ms,p99_ms,mean_ms,csr_shards,"
      "csr_bytes,peak_rss_mb,select_utility,select_timed_out,"
      "view_budget_bytes,store_bytes,store_views,evictions,"
      "rewrite_fallbacks,failed_requests,drift,online,ingested,"
      "reselections,swaps_committed,fast_path,parse_p50_ms,parse_p95_ms,"
      "parse_p99_ms,rewrite_p50_ms,rewrite_p95_ms,rewrite_p99_ms,"
      "execute_p50_ms,execute_p95_ms,execute_p99_ms,rewrite_cache_hits,"
      "rewrite_cache_misses\n"
      "WK1,scaled,48,24,6,3,4,12345,80,0.062,1280.00,0.500,1.250,2.500,"
      "0.625,2,150,10.5,0.0625,0,65536,4096,3,2,1,0,churn,1,80,5,5,"
      "1,0.125,0.250,0.375,0.062,0.125,0.188,0.250,0.750,1.500,70,10\n";
  EXPECT_EQ(ThroughputCsv({FixtureResult()}), expected);
}

TEST(LoadGenWriterTest, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "loadgen_writer_test.txt";
  const std::string text = "line one\nline two\n";
  ASSERT_TRUE(WriteTextFile(path, text).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string read(64, '\0');
  read.resize(std::fread(read.data(), 1, read.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(read, text);
}

TEST(LoadGenTest, PeakRssIsPositive) { EXPECT_GT(PeakRssBytes(), 0u); }

}  // namespace
}  // namespace autoview
