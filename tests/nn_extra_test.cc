#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/encoders.h"
#include "nn/modules.h"
#include "nn/optimizer.h"

namespace autoview {
namespace {

using nn::Tensor;

TEST(StringEncoderTest, FixedLengthOutput) {
  Rng rng(3);
  StringEncoder enc(8, &rng);
  Tensor a = enc.Forward("short");
  Tensor b = enc.Forward("a much longer string with spaces");
  EXPECT_EQ(a.rows(), 1u);
  EXPECT_EQ(a.cols(), 8u);
  EXPECT_EQ(b.cols(), 8u);
}

TEST(StringEncoderTest, EmptyStringIsZeros) {
  Rng rng(3);
  StringEncoder enc(8, &rng);
  Tensor z = enc.Forward("");
  for (nn::Scalar v : z.data()) EXPECT_EQ(v, 0.0);
}

TEST(StringEncoderTest, DifferentStringsDifferentVectors) {
  Rng rng(3);
  StringEncoder enc(8, &rng);
  Tensor a = enc.Forward("1010");
  Tensor b = enc.Forward("1011");
  double diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff += std::fabs(a.data()[i] - b.data()[i]);
  }
  EXPECT_GT(diff, 1e-9);
}

TEST(StringEncoderTest, NoCnnModeHasFewerParameters) {
  Rng rng(3);
  StringEncoder with_cnn(8, &rng, /*use_cnn=*/true);
  StringEncoder without(8, &rng, /*use_cnn=*/false, /*trainable_chars=*/false);
  EXPECT_GT(with_cnn.Parameters().size(), without.Parameters().size());
  EXPECT_TRUE(without.Parameters().empty());  // frozen chars, no conv
}

TEST(StringEncoderTest, SimilarStringsCloserThanDissimilar) {
  // The char-CNN should map '1010' nearer to '1011' than to 'zzzzzz'
  // in most random initializations — a soft locality property of the
  // architecture (shared char embeddings + local convolutions).
  size_t closer = 0;
  for (uint64_t seed = 1; seed <= 7; ++seed) {
    Rng rng(seed);
    StringEncoder enc(12, &rng);
    auto dist = [&](const Tensor& x, const Tensor& y) {
      double d = 0;
      for (size_t i = 0; i < x.size(); ++i) {
        d += (x.data()[i] - y.data()[i]) * (x.data()[i] - y.data()[i]);
      }
      return d;
    };
    Tensor a = enc.Forward("1010");
    Tensor b = enc.Forward("1011");
    Tensor c = enc.Forward("zzzzzz");
    if (dist(a, b) < dist(a, c)) ++closer;
  }
  EXPECT_GE(closer, 5u);
}

TEST(PlanEncoderTest, EncodesVariableLengthPlans) {
  Rng rng(4);
  KeywordVocab vocab;
  vocab.Add("Scan");
  vocab.Add("Filter");
  vocab.Add("t");
  nn::Embedding emb(vocab.size() + 4, 8, &rng);
  StringEncoder strenc(8, &rng);
  PlanEncoder enc(&emb, &strenc, &vocab, 16, &rng);
  Tensor small = enc.Forward({{"Scan", "t"}});
  Tensor big = enc.Forward(
      {{"Filter", "AND", "EQ", "dt", "'1010'"}, {"Scan", "t"}});
  EXPECT_EQ(small.cols(), 16u);
  EXPECT_EQ(big.cols(), 16u);
  EXPECT_EQ(enc.output_dim(), 16u);
  // Empty plan yields zeros of the right shape.
  Tensor empty = enc.Forward({});
  EXPECT_EQ(empty.cols(), 16u);
}

TEST(PlanEncoderTest, PoolingModeChangesOutputDim) {
  Rng rng(4);
  KeywordVocab vocab;
  nn::Embedding emb(4, 8, &rng);
  StringEncoder strenc(8, &rng);
  PlanEncoder pooled(&emb, &strenc, &vocab, 16, &rng, /*use_sequence=*/false);
  EXPECT_EQ(pooled.output_dim(), 8u);  // embedding dim, not LSTM hidden
  EXPECT_TRUE(pooled.Parameters().empty());
  Tensor out = pooled.Forward({{"Scan", "t"}});
  EXPECT_EQ(out.cols(), 8u);
}

TEST(SchemaEncoderTest, PoolsKeywordEmbeddings) {
  Rng rng(4);
  KeywordVocab vocab;
  const size_t id = vocab.Add("users");
  nn::Embedding emb(vocab.size() + 2, 6, &rng);
  SchemaEncoder enc(&emb, &vocab);
  Tensor one = enc.Forward({"users"});
  // Pooling one keyword returns its embedding row.
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(one.at(0, j), emb.Parameters()[0].at(id, j));
  }
  Tensor empty = enc.Forward({});
  for (nn::Scalar v : empty.data()) EXPECT_EQ(v, 0.0);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::FromData({10.0}, 1, 1, true);
  nn::Adam::Options opts;
  opts.lr = 0.1;
  opts.weight_decay = 1.0;
  nn::Adam adam({w}, opts);
  // Zero gradient, decay only.
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    adam.Step();
  }
  EXPECT_LT(std::fabs(w.data()[0]), 10.0);
}

// ---------------------------------------------------------------------
// No-grad inference fast path.

TEST(NoGradTest, GuardSkipsGraphButKeepsValues) {
  Rng rng(3);
  nn::Mlp mlp({6, 8, 1}, &rng);
  std::vector<nn::Scalar> input(2 * 6);
  for (auto& v : input) v = rng.Uniform(-1.0, 1.0);
  nn::Tensor x_grad = nn::Tensor::FromData(input, 2, 6);
  nn::Tensor with_graph = mlp.Forward(x_grad);

  ASSERT_FALSE(nn::InferenceMode());
  nn::Tensor no_graph;
  {
    nn::NoGradGuard guard;
    EXPECT_TRUE(nn::InferenceMode());
    nn::Tensor x = nn::Tensor::FromData(input, 2, 6);
    no_graph = mlp.Forward(x);
  }
  EXPECT_FALSE(nn::InferenceMode());
  // Bit-identical values...
  EXPECT_EQ(no_graph.data(), with_graph.data());
  // ...but no autograd bookkeeping: no grad storage, no graph, and the
  // result never requires grad even though the parameters do.
  EXPECT_TRUE(no_graph.grad().empty());
  EXPECT_TRUE(no_graph.node()->parents.empty());
  EXPECT_FALSE(no_graph.requires_grad());
  EXPECT_TRUE(with_graph.requires_grad());
}

TEST(NoGradTest, MatMulTBBitIdenticalToMatMul) {
  Rng rng(17);
  const size_t m = 5, k = 7, n = 9;  // n % tile != 0 exercises the tail
  std::vector<nn::Scalar> a(m * k), b(k * n), bt(n * k);
  for (auto& v : a) v = rng.Bernoulli(0.3) ? 0.0 : rng.Uniform(-2.0, 2.0);
  for (auto& v : b) v = rng.Uniform(-2.0, 2.0);
  for (size_t p = 0; p < k; ++p) {
    for (size_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
  }
  nn::Tensor ref =
      nn::MatMul(nn::Tensor::FromData(a, m, k), nn::Tensor::FromData(b, k, n));
  std::vector<nn::Scalar> out(m * n, -1.0);
  nn::MatMulTB(a.data(), m, k, bt.data(), n, out.data());
  EXPECT_EQ(out, ref.data());
}

TEST(NoGradTest, MlpInferenceMatchesForwardAndRefreshes) {
  Rng rng(23);
  nn::Mlp mlp({8, 16, 16, 1}, &rng);
  nn::MlpInference inference(&mlp);
  std::vector<nn::Scalar> batch(10 * 8);
  for (auto& v : batch) v = rng.Uniform(-1.5, 1.5);

  nn::Tensor ref = mlp.Forward(nn::Tensor::FromData(batch, 10, 8));
  EXPECT_EQ(inference.Forward(batch.data(), 10), ref.data());

  // Stale snapshots must be refreshable after a parameter update.
  nn::Adam adam(mlp.Parameters(), {});
  nn::Tensor loss =
      nn::Mean(mlp.Forward(nn::Tensor::FromData(batch, 10, 8)));
  mlp.ZeroGrad();
  loss.Backward();
  adam.Step();
  inference.Refresh();
  nn::Tensor after = mlp.Forward(nn::Tensor::FromData(batch, 10, 8));
  EXPECT_EQ(inference.Forward(batch.data(), 10), after.data());
  // Single-row calls reuse the same buffers.
  nn::Tensor one = mlp.Forward(nn::Tensor::FromData(
      std::vector<nn::Scalar>(batch.begin(), batch.begin() + 8), 1, 8));
  EXPECT_EQ(inference.Forward(batch.data(), 1), one.data());
}

}  // namespace
}  // namespace autoview
