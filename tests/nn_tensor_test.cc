#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/modules.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace autoview {
namespace nn {
namespace {

/// Central-difference gradient check: perturbs every element of every
/// parameter and compares d(loss)/d(param) with the autograd result.
void CheckGradients(const std::vector<Tensor>& params,
                    const std::function<Tensor()>& loss_fn,
                    Scalar tol = 1e-6) {
  // Autograd gradients.
  for (auto p : params) p.ZeroGrad();
  Tensor loss = loss_fn();
  loss.Backward();
  std::vector<std::vector<Scalar>> analytic;
  for (const auto& p : params) analytic.push_back(p.grad());

  const Scalar h = 1e-5;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor p = params[pi];
    for (size_t j = 0; j < p.size(); ++j) {
      const Scalar original = p.data()[j];
      p.mutable_data()[j] = original + h;
      const Scalar up = loss_fn().item();
      p.mutable_data()[j] = original - h;
      const Scalar down = loss_fn().item();
      p.mutable_data()[j] = original;
      const Scalar numeric = (up - down) / (2 * h);
      EXPECT_NEAR(analytic[pi][j], numeric,
                  tol * std::max(1.0, std::fabs(numeric)))
          << "param " << pi << " index " << j;
    }
  }
}

TEST(TensorTest, FactoriesAndAccessors) {
  Tensor z = Tensor::Zeros(2, 3);
  EXPECT_EQ(z.rows(), 2u);
  EXPECT_EQ(z.cols(), 3u);
  EXPECT_EQ(z.size(), 6u);
  EXPECT_FALSE(z.requires_grad());
  Tensor f = Tensor::Full(1, 2, 4.5, true);
  EXPECT_TRUE(f.requires_grad());
  EXPECT_EQ(f.at(0, 1), 4.5);
  Tensor d = Tensor::FromData({1, 2, 3, 4}, 2, 2);
  EXPECT_EQ(d.at(1, 0), 3.0);
}

TEST(TensorTest, MatMulValues) {
  Tensor a = Tensor::FromData({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::FromData({5, 6, 7, 8}, 2, 2);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0);
  EXPECT_EQ(c.at(0, 1), 22.0);
  EXPECT_EQ(c.at(1, 0), 43.0);
  EXPECT_EQ(c.at(1, 1), 50.0);
}

TEST(TensorTest, AddBroadcastsBias) {
  Tensor a = Tensor::FromData({1, 2, 3, 4}, 2, 2);
  Tensor bias = Tensor::FromData({10, 20}, 1, 2);
  Tensor c = Add(a, bias);
  EXPECT_EQ(c.at(0, 0), 11.0);
  EXPECT_EQ(c.at(1, 1), 24.0);
}

TEST(TensorTest, SimpleBackward) {
  // loss = sum((a*b)) with a,b trainable.
  Tensor a = Tensor::FromData({2, 3}, 1, 2, true);
  Tensor b = Tensor::FromData({5, 7}, 1, 2, true);
  Tensor loss = Sum(Mul(a, b));
  loss.Backward();
  EXPECT_EQ(a.grad()[0], 5.0);
  EXPECT_EQ(a.grad()[1], 7.0);
  EXPECT_EQ(b.grad()[0], 2.0);
  EXPECT_EQ(b.grad()[1], 3.0);
}

TEST(TensorTest, GradientAccumulatesAcrossBackwardCalls) {
  Tensor a = Tensor::FromData({1.0}, 1, 1, true);
  Tensor l1 = Scale(a, 3.0);
  l1.Backward();
  EXPECT_EQ(a.grad()[0], 3.0);
  Tensor l2 = Scale(a, 4.0);
  l2.Backward();
  EXPECT_EQ(a.grad()[0], 7.0);
  a.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0);
}

TEST(TensorTest, SharedSubexpressionGetsBothPaths) {
  // loss = x*x (via two separate Mul args referencing same tensor).
  Tensor x = Tensor::FromData({3.0}, 1, 1, true);
  Tensor loss = Sum(Mul(x, x));
  loss.Backward();
  EXPECT_EQ(x.grad()[0], 6.0);  // d(x^2)/dx = 2x
}

TEST(TensorTest, GradCheckMatMul) {
  Rng rng(3);
  Tensor a = Tensor::Uniform(3, 4, 1.0, &rng);
  Tensor b = Tensor::Uniform(4, 2, 1.0, &rng);
  CheckGradients({a, b}, [&] { return Sum(MatMul(a, b)); });
}

TEST(TensorTest, GradCheckElementwiseChain) {
  Rng rng(4);
  Tensor a = Tensor::Uniform(2, 3, 1.0, &rng);
  Tensor b = Tensor::Uniform(2, 3, 1.0, &rng);
  CheckGradients({a, b}, [&] {
    return Mean(Mul(Sub(a, b), Add(a, Scale(b, 0.5))));
  });
}

TEST(TensorTest, GradCheckActivations) {
  Rng rng(5);
  Tensor a = Tensor::Uniform(2, 4, 2.0, &rng);
  CheckGradients({a}, [&] { return Sum(Sigmoid(a)); });
  CheckGradients({a}, [&] { return Sum(Tanh(a)); });
  // ReLU: shift away from 0 to keep the finite difference valid.
  Tensor shifted = Tensor::Uniform(2, 4, 1.0, &rng);
  for (auto& v : shifted.mutable_data()) v += (v >= 0 ? 0.5 : -0.5);
  CheckGradients({shifted}, [&] { return Sum(ReLU(shifted)); });
}

TEST(TensorTest, GradCheckConcatAndSlice) {
  Rng rng(6);
  Tensor a = Tensor::Uniform(2, 3, 1.0, &rng);
  Tensor b = Tensor::Uniform(2, 2, 1.0, &rng);
  CheckGradients({a, b}, [&] {
    Tensor cat = ConcatCols({a, b});
    return Sum(Mul(SliceCols(cat, 1, 3), SliceCols(cat, 2, 3)));
  });
  Tensor c = Tensor::Uniform(1, 3, 1.0, &rng);
  CheckGradients({a, c}, [&] { return Sum(ConcatRows({a, c})); });
}

TEST(TensorTest, GradCheckGatherAndPooling) {
  Rng rng(7);
  Tensor table = Tensor::Uniform(5, 3, 1.0, &rng);
  CheckGradients({table}, [&] {
    Tensor rows = GatherRows(table, {0, 2, 2, 4});
    return Sum(Mul(MeanRows(rows), MeanRows(rows)));
  });
}

TEST(TensorTest, GradCheckConv1D) {
  Rng rng(8);
  Tensor input = Tensor::Uniform(6, 4, 1.0, &rng);
  Tensor kernel = Tensor::Uniform(1, 3, 1.0, &rng);
  Tensor bias = Tensor::Uniform(1, 1, 1.0, &rng);
  CheckGradients({input, kernel, bias},
                 [&] { return Mean(Conv1D(input, kernel, bias)); });
}

TEST(TensorTest, GradCheckBatchNorm) {
  Rng rng(9);
  Tensor input = Tensor::Uniform(4, 3, 1.0, &rng);
  Tensor gamma = Tensor::Full(1, 1, 1.3, true);
  Tensor beta = Tensor::Full(1, 1, -0.2, true);
  CheckGradients(
      {input, gamma, beta},
      [&] {
        Tensor out = BatchNorm(input, gamma, beta);
        return Sum(Mul(out, out));
      },
      1e-4);
}

TEST(TensorTest, GradCheckMseLoss) {
  Rng rng(10);
  Tensor pred = Tensor::Uniform(3, 1, 1.0, &rng);
  Tensor target = Tensor::FromData({0.5, -0.2, 0.9}, 3, 1);
  CheckGradients({pred}, [&] { return MseLoss(pred, target); });
}

TEST(TensorTest, BatchNormNormalizes) {
  Rng rng(11);
  Tensor input = Tensor::Uniform(8, 4, 3.0, &rng);
  Tensor gamma = Tensor::Full(1, 1, 1.0, true);
  Tensor beta = Tensor::Zeros(1, 1, true);
  Tensor out = BatchNorm(input, gamma, beta);
  Scalar mean = 0;
  for (Scalar v : out.data()) mean += v;
  mean /= static_cast<Scalar>(out.size());
  Scalar var = 0;
  for (Scalar v : out.data()) var += (v - mean) * (v - mean);
  var /= static_cast<Scalar>(out.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-3);
}

TEST(ModulesTest, LinearShapesAndGradCheck) {
  Rng rng(12);
  Linear layer(4, 3, &rng);
  Tensor x = Tensor::Uniform(2, 4, 1.0, &rng);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 3u);
  EXPECT_EQ(layer.NumParameters(), 4u * 3u + 3u);
  CheckGradients(layer.Parameters(),
                 [&] { return Sum(layer.Forward(x)); });
}

TEST(ModulesTest, EmbeddingLookupAndGradCheck) {
  Rng rng(13);
  Embedding emb(10, 4, &rng);
  Tensor rows = emb.Forward({1, 3, 3});
  EXPECT_EQ(rows.rows(), 3u);
  EXPECT_EQ(rows.cols(), 4u);
  // Row 1 equals the table's row 1.
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(rows.at(0, j), emb.Parameters()[0].at(1, j));
  }
  CheckGradients(emb.Parameters(),
                 [&] { return Sum(emb.Forward({0, 2, 2, 9})); });
}

TEST(ModulesTest, LstmShapesAndGradCheck) {
  Rng rng(14);
  Lstm lstm(3, 5, &rng);
  Tensor seq = Tensor::Uniform(4, 3, 1.0, &rng);
  Tensor h = lstm.Forward(seq);
  EXPECT_EQ(h.rows(), 1u);
  EXPECT_EQ(h.cols(), 5u);
  CheckGradients(
      lstm.Parameters(), [&] { return Sum(lstm.Forward(seq)); }, 1e-4);
}

TEST(ModulesTest, LstmEmptySequenceReturnsZeros) {
  Rng rng(15);
  Lstm lstm(3, 4, &rng);
  Tensor h = lstm.Forward(Tensor::Zeros(0, 3));
  for (Scalar v : h.data()) EXPECT_EQ(v, 0.0);
}

TEST(ModulesTest, LstmIsOrderSensitive) {
  Rng rng(16);
  Lstm lstm(2, 4, &rng);
  Tensor ab = Tensor::FromData({1, 0, 0, 1}, 2, 2);
  Tensor ba = Tensor::FromData({0, 1, 1, 0}, 2, 2);
  Tensor ha = lstm.Forward(ab);
  Tensor hb = lstm.Forward(ba);
  Scalar diff = 0;
  for (size_t j = 0; j < ha.size(); ++j) {
    diff += std::fabs(ha.data()[j] - hb.data()[j]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(ModulesTest, ConvBlockGradCheck) {
  Rng rng(17);
  ConvBlock block(&rng);
  Tensor x = Tensor::Uniform(5, 3, 1.0, &rng);
  Tensor y = block.Forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 3u);
  CheckGradients(
      block.Parameters(), [&] { return Sum(block.Forward(x)); }, 1e-4);
}

TEST(ModulesTest, MlpDqnShape) {
  // The paper's DQN: four FC layers with 16/64/16/1 neurons, ReLU each.
  Rng rng(18);
  Mlp dqn({8, 16, 64, 16, 1}, &rng);
  Tensor x = Tensor::Uniform(1, 8, 1.0, &rng);
  Tensor q = dqn.Forward(x);
  EXPECT_EQ(q.size(), 1u);
  CheckGradients(
      dqn.Parameters(), [&] { return Sum(dqn.Forward(x)); }, 1e-4);
}

TEST(ModulesTest, MlpCopyFrom) {
  Rng rng(19);
  Mlp a({3, 4, 1}, &rng), b({3, 4, 1}, &rng);
  Tensor x = Tensor::Uniform(1, 3, 1.0, &rng);
  b.CopyFrom(a);
  EXPECT_EQ(a.Forward(x).item(), b.Forward(x).item());
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  // minimize (w - 3)^2: w should converge to 3.
  Tensor w = Tensor::FromData({0.0}, 1, 1, true);
  Tensor target = Tensor::FromData({3.0}, 1, 1);
  Adam::Options opts;
  opts.lr = 0.1;
  Adam adam({w}, opts);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    Tensor loss = MseLoss(w, target);
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.data()[0], 3.0, 1e-3);
}

TEST(OptimizerTest, SgdMinimizesQuadratic) {
  Tensor w = Tensor::FromData({-2.0}, 1, 1, true);
  Tensor target = Tensor::FromData({1.5}, 1, 1);
  Sgd sgd({w}, 0.2);
  for (int i = 0; i < 200; ++i) {
    sgd.ZeroGrad();
    MseLoss(w, target).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.data()[0], 1.5, 1e-4);
}

TEST(OptimizerTest, LinearRegressionLearns) {
  // Learn y = 2x1 - x2 + 0.5 with a Linear layer.
  Rng rng(20);
  Linear layer(2, 1, &rng);
  Adam::Options opts;
  opts.lr = 0.05;
  Adam adam(layer.Parameters(), opts);
  for (int step = 0; step < 500; ++step) {
    std::vector<Scalar> xs, ys;
    for (int i = 0; i < 16; ++i) {
      Scalar x1 = rng.Uniform(-1, 1), x2 = rng.Uniform(-1, 1);
      xs.push_back(x1);
      xs.push_back(x2);
      ys.push_back(2 * x1 - x2 + 0.5);
    }
    Tensor x = Tensor::FromData(xs, 16, 2);
    Tensor y = Tensor::FromData(ys, 16, 1);
    adam.ZeroGrad();
    MseLoss(layer.Forward(x), y).Backward();
    adam.Step();
  }
  const auto& w = layer.Parameters()[0].data();
  const auto& b = layer.Parameters()[1].data();
  EXPECT_NEAR(w[0], 2.0, 0.05);
  EXPECT_NEAR(w[1], -1.0, 0.05);
  EXPECT_NEAR(b[0], 0.5, 0.05);
}

}  // namespace
}  // namespace nn
}  // namespace autoview
