// Property suite for the parallelism contract: every pooled code path
// (multi-restart IterView, batched Wide-Deep inference, subquery
// extraction + overlap detection) must produce results bit-identical to
// a 1-thread run under the same seed, for any worker count.

#include <gtest/gtest.h>

#include "core/autoview.h"
#include "costmodel/wide_deep.h"
#include "generators.h"
#include "plan/builder.h"
#include "select/iterview.h"
#include "subquery/clusterer.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace autoview {
namespace {

using testing::RandomProblem;

// ---------------------------------------------------------------------------
// IterView / BigSub: seeded multi-restart selection is independent of
// the worker count — same utility, same selected view set Z, same
// per-query assignment Y, same winning-trial trace.
// ---------------------------------------------------------------------------

class IterViewDeterminismP : public ::testing::TestWithParam<uint64_t> {};

MvsSolution RunIterView(const MvsProblem& problem, uint64_t seed,
                        size_t freeze_after, ThreadPool* pool,
                        std::vector<double>* trace) {
  IterViewSelector::Options options;
  options.iterations = 30;
  options.freeze_selected_after = freeze_after;
  options.seed = seed;
  options.restarts = 6;
  options.pool = pool;
  IterViewSelector selector(options);
  auto result = selector.Select(problem);
  EXPECT_TRUE(result.ok());
  *trace = selector.utility_trace();
  return result.value();
}

TEST_P(IterViewDeterminismP, OneThreadMatchesManyThreads) {
  const uint64_t seed = GetParam();
  const MvsProblem problem = RandomProblem(24, 14, seed);
  ThreadPool one(1), many(4);
  for (size_t freeze : {static_cast<size_t>(SIZE_MAX), size_t{15}}) {
    std::vector<double> trace_one, trace_many;
    const MvsSolution a = RunIterView(problem, seed, freeze, &one, &trace_one);
    const MvsSolution b =
        RunIterView(problem, seed, freeze, &many, &trace_many);
    EXPECT_EQ(a.utility, b.utility);  // bitwise, not approximate
    EXPECT_EQ(a.z, b.z);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(trace_one, trace_many);
  }
}

TEST_P(IterViewDeterminismP, SingleRestartPreservesLegacyStream) {
  // restarts == 1 must reproduce the historical single-trial result
  // (restart 0 consumes the raw seed, not a derived stream).
  const uint64_t seed = GetParam();
  const MvsProblem problem = RandomProblem(20, 12, seed + 100);
  IterViewSelector legacy = IterViewSelector::IterView(30, seed);
  auto expected = legacy.Select(problem);
  ASSERT_TRUE(expected.ok());

  IterViewSelector::Options options;
  options.iterations = 30;
  options.seed = seed;
  options.restarts = 1;
  IterViewSelector selector(options);
  auto got = selector.Select(problem);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(expected.value().utility, got.value().utility);
  EXPECT_EQ(expected.value().z, got.value().z);
  EXPECT_EQ(expected.value().y, got.value().y);
}

TEST_P(IterViewDeterminismP, MoreRestartsNeverHurt) {
  const uint64_t seed = GetParam();
  const MvsProblem problem = RandomProblem(24, 14, seed);
  ThreadPool pool(4);
  std::vector<double> trace;
  const MvsSolution single =
      RunIterView(problem, seed, SIZE_MAX, &pool, &trace);
  IterViewSelector::Options options;
  options.iterations = 30;
  options.seed = seed;
  options.restarts = 12;
  options.pool = &pool;
  IterViewSelector selector(options);
  auto result = selector.Select(problem);
  ASSERT_TRUE(result.ok());
  // The 12-restart winner dominates the 6-restart winner: the trial set
  // of the former is a superset of the latter's.
  EXPECT_GE(result.value().utility, single.utility);
  EXPECT_TRUE(IsFeasible(problem, result.value().z, result.value().y));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IterViewDeterminismP,
                         ::testing::Values(31, 32, 33, 34));

// ---------------------------------------------------------------------------
// Wide-Deep: batched parallel inference must equal the sequential
// Estimate loop bitwise, for every pool size.
// ---------------------------------------------------------------------------

class WideDeepBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CloudWorkloadSpec spec;
    spec.name = "par";
    spec.projects = 2;
    spec.queries = 30;
    spec.min_rows = 200;
    spec.max_rows = 500;
    spec.subquery_pool = 6;
    spec.seed = 77;
    workload_ = new GeneratedWorkload(GenerateCloudWorkload(spec));
    system_ = new AutoViewSystem(workload_->db.get(), AutoViewOptions{});
    ASSERT_TRUE(system_->LoadWorkload(workload_->sql).ok());
    ASSERT_TRUE(system_->BuildGroundTruth().ok());
    WideDeepOptions options;
    options.epochs = 3;  // enough to give non-trivial weights
    options.seed = 5;
    estimator_ = new WideDeepEstimator(&workload_->db->catalog(), options);
    ASSERT_TRUE(estimator_->Train(system_->cost_dataset()).ok());
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
    delete system_;
    system_ = nullptr;
    delete workload_;
    workload_ = nullptr;
  }

  static GeneratedWorkload* workload_;
  static AutoViewSystem* system_;
  static WideDeepEstimator* estimator_;
};

GeneratedWorkload* WideDeepBatchTest::workload_ = nullptr;
AutoViewSystem* WideDeepBatchTest::system_ = nullptr;
WideDeepEstimator* WideDeepBatchTest::estimator_ = nullptr;

TEST_F(WideDeepBatchTest, BatchMatchesSequentialForAnyPoolSize) {
  const auto& samples = system_->cost_dataset();
  ASSERT_FALSE(samples.empty());
  std::vector<double> sequential;
  sequential.reserve(samples.size());
  for (const auto& s : samples) sequential.push_back(estimator_->Estimate(s));
  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    const std::vector<double> batched =
        estimator_->EstimateBatch(samples, &pool);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i], sequential[i])  // bitwise
          << "sample " << i << " with " << threads << " threads";
    }
  }
}

TEST_F(WideDeepBatchTest, EstimatedProblemIdenticalAcrossPools) {
  auto estimated = system_->EstimateProblem(*estimator_);
  ASSERT_TRUE(estimated.ok());
  auto again = system_->EstimateProblem(*estimator_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(estimated.value().benefit, again.value().benefit);
}

// ---------------------------------------------------------------------------
// Subquery pre-process: parallel extraction and overlap detection give
// the same analysis as a 1-thread pool for every seed.
// ---------------------------------------------------------------------------

class ClustererDeterminismP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClustererDeterminismP, AnalysisIndependentOfThreadCount) {
  CloudWorkloadSpec spec;
  spec.projects = 2;
  spec.queries = 25;
  spec.min_rows = 60;
  spec.max_rows = 120;
  spec.subquery_pool = 8;
  spec.seed = GetParam();
  GeneratedWorkload wk = GenerateCloudWorkload(spec);
  PlanBuilder builder(&wk.db->catalog());
  std::vector<PlanNodePtr> queries;
  for (const auto& sql : wk.sql) {
    auto plan = builder.BuildFromSql(sql);
    ASSERT_TRUE(plan.ok());
    queries.push_back(plan.value());
  }

  ThreadPool one(1), many(4);
  SubqueryClusterer::Options opt_one, opt_many;
  opt_one.pool = &one;
  opt_many.pool = &many;
  const WorkloadAnalysis a = SubqueryClusterer(opt_one).Analyze(queries);
  const WorkloadAnalysis b = SubqueryClusterer(opt_many).Analyze(queries);

  EXPECT_EQ(a.num_subqueries, b.num_subqueries);
  EXPECT_EQ(a.num_equivalent_pairs, b.num_equivalent_pairs);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.associated_queries, b.associated_queries);
  EXPECT_EQ(a.overlapping, b.overlapping);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].canonical_key, b.clusters[c].canonical_key);
    EXPECT_EQ(a.clusters[c].query_indices, b.clusters[c].query_indices);
    ASSERT_EQ(a.clusters[c].occurrences.size(),
              b.clusters[c].occurrences.size());
    for (size_t o = 0; o < a.clusters[c].occurrences.size(); ++o) {
      EXPECT_EQ(a.clusters[c].occurrences[o].query_index,
                b.clusters[c].occurrences[o].query_index);
    }
    EXPECT_TRUE(
        a.clusters[c].candidate->Equals(*b.clusters[c].candidate));
  }
}

TEST_P(ClustererDeterminismP, ExtractAllMatchesPerQueryExtract) {
  CloudWorkloadSpec spec;
  spec.projects = 2;
  spec.queries = 15;
  spec.min_rows = 60;
  spec.max_rows = 100;
  spec.subquery_pool = 6;
  spec.seed = GetParam();
  GeneratedWorkload wk = GenerateCloudWorkload(spec);
  PlanBuilder builder(&wk.db->catalog());
  std::vector<PlanNodePtr> queries;
  for (const auto& sql : wk.sql) {
    auto plan = builder.BuildFromSql(sql);
    ASSERT_TRUE(plan.ok());
    queries.push_back(plan.value());
  }
  SubqueryExtractor extractor;
  ThreadPool pool(4);
  const auto all = extractor.ExtractAll(queries, &pool);
  ASSERT_EQ(all.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = extractor.Extract(queries[qi]);
    ASSERT_EQ(all[qi].size(), expected.size()) << "query " << qi;
    for (size_t s = 0; s < expected.size(); ++s) {
      EXPECT_TRUE(all[qi][s]->Equals(*expected[s]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClustererDeterminismP,
                         ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace autoview
