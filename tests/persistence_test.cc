#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/metadata.h"
#include "nn/modules.h"
#include "nn/serialize.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace autoview {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(5);
  nn::Mlp source({4, 8, 1}, &rng);
  nn::Mlp target({4, 8, 1}, &rng);
  const std::string path = TempPath("model.avnn");
  ASSERT_TRUE(nn::SaveParameters(source.Parameters(), path).ok());

  auto params = target.Parameters();
  ASSERT_TRUE(nn::LoadParameters(path, &params).ok());
  nn::Tensor x = nn::Tensor::Uniform(3, 4, 1.0, &rng);
  nn::Tensor a = source.Forward(x);
  nn::Tensor b = target.Forward(x);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, PeekShapes) {
  Rng rng(5);
  nn::Lstm lstm(3, 4, &rng);
  const std::string path = TempPath("lstm.avnn");
  ASSERT_TRUE(nn::SaveParameters(lstm.Parameters(), path).ok());
  auto shapes = nn::PeekShapes(path);
  ASSERT_TRUE(shapes.ok());
  ASSERT_EQ(shapes.value().size(), 2u);
  EXPECT_EQ(shapes.value()[0].first, 3u + 4u);   // fused gate weights
  EXPECT_EQ(shapes.value()[0].second, 4u * 4u);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(5);
  nn::Mlp small({2, 3, 1}, &rng);
  nn::Mlp big({2, 5, 1}, &rng);
  const std::string path = TempPath("mismatch.avnn");
  ASSERT_TRUE(nn::SaveParameters(small.Parameters(), path).ok());
  auto params = big.Parameters();
  EXPECT_FALSE(nn::LoadParameters(path, &params).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.avnn");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a model", f);
  std::fclose(f);
  Rng rng(5);
  nn::Mlp mlp({2, 2, 1}, &rng);
  auto params = mlp.Parameters();
  EXPECT_FALSE(nn::LoadParameters(path, &params).ok());
  EXPECT_FALSE(nn::PeekShapes(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileRejected) {
  Rng rng(5);
  nn::Mlp mlp({2, 2, 1}, &rng);
  auto params = mlp.Parameters();
  EXPECT_EQ(nn::LoadParameters("/nonexistent/model.avnn", &params).code(),
            StatusCode::kNotFound);
}

/// Reads the whole file into memory (for corruption tests).
std::vector<unsigned char> Slurp(const std::string& path) {
  std::vector<unsigned char> bytes;
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    bytes.push_back(static_cast<unsigned char>(c));
  }
  std::fclose(f);
  return bytes;
}

void Dump(const std::string& path, const std::vector<unsigned char>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(SerializeTest, TruncatedFileRejected) {
  Rng rng(5);
  nn::Mlp mlp({3, 4, 1}, &rng);
  const std::string path = TempPath("truncated.avnn");
  ASSERT_TRUE(nn::SaveParameters(mlp.Parameters(), path).ok());
  std::vector<unsigned char> bytes = Slurp(path);
  ASSERT_GT(bytes.size(), 24u);
  // Keep the header intact but cut the payload short: a torn write.
  bytes.resize(bytes.size() - 7);
  Dump(path, bytes);
  auto params = mlp.Parameters();
  EXPECT_EQ(nn::LoadParameters(path, &params).code(), StatusCode::kParseError);
  EXPECT_EQ(nn::PeekShapes(path).status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SerializeTest, BitFlipRejectedByChecksum) {
  Rng rng(5);
  nn::Mlp mlp({3, 4, 1}, &rng);
  const std::string path = TempPath("flipped.avnn");
  ASSERT_TRUE(nn::SaveParameters(mlp.Parameters(), path).ok());
  std::vector<unsigned char> bytes = Slurp(path);
  // Flip one bit in the middle of the payload (past the 16-byte header):
  // silent weight corruption, caught only by the checksum.
  bytes[16 + (bytes.size() - 16) / 2] ^= 0x01;
  Dump(path, bytes);
  auto params = mlp.Parameters();
  const Status status = nn::LoadParameters(path, &params);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SerializeTest, FailedSavePreservesPreviousModel) {
  Rng rng(5);
  nn::Mlp original({3, 4, 1}, &rng);
  nn::Mlp replacement({3, 4, 1}, &rng);
  const std::string path = TempPath("atomic.avnn");
  ASSERT_TRUE(nn::SaveParameters(original.Parameters(), path).ok());

  ASSERT_TRUE(Failpoints::Instance().Configure("serialize.save=error").ok());
  EXPECT_FALSE(nn::SaveParameters(replacement.Parameters(), path).ok());
  Failpoints::Instance().Clear();

  // The interrupted save must not have clobbered or torn the original,
  // nor left a stale temp file behind.
  nn::Mlp loaded({3, 4, 1}, &rng);
  auto params = loaded.Parameters();
  ASSERT_TRUE(nn::LoadParameters(path, &params).ok());
  nn::Tensor x = nn::Tensor::Uniform(2, 3, 1.0, &rng);
  nn::Tensor a = original.Forward(x);
  nn::Tensor b = loaded.Forward(x);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(MetadataStoreTest, WriteLoadRoundTrip) {
  const std::string path = TempPath("meta.tsv");
  MetadataStore store(path);
  std::vector<MetadataRecord> records = {
      {"select a from t", "select a from t where a = 1", "t", 0.5, 1.5, 1.0},
      {"select b from u", "select b from u where b = 2", "t,u", 0.25, 2.0,
       1.75},
  };
  ASSERT_TRUE(store.Write(records).ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].query_sql, records[0].query_sql);
  EXPECT_EQ(loaded.value()[1].tables, "t,u");
  EXPECT_DOUBLE_EQ(loaded.value()[1].rewritten_cost, 0.25);
  std::remove(path.c_str());
}

TEST(MetadataStoreTest, AppendAccumulates) {
  const std::string path = TempPath("meta_append.tsv");
  MetadataStore store(path);
  ASSERT_TRUE(store.Write({{"q1", "v1", "t", 1, 2, 3}}).ok());
  ASSERT_TRUE(store.Append({{"q2", "v2", "t", 4, 5, 6}}).ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[1].query_sql, "q2");
  std::remove(path.c_str());
}

TEST(MetadataStoreTest, RejectsFieldsWithSeparators) {
  MetadataStore store(TempPath("meta_bad.tsv"));
  EXPECT_FALSE(store.Write({{"a\tb", "v", "t", 1, 2, 3}}).ok());
  EXPECT_FALSE(store.Write({{"a\nb", "v", "t", 1, 2, 3}}).ok());
}

TEST(MetadataStoreTest, MissingFileIsNotFound) {
  MetadataStore store("/nonexistent/meta.tsv");
  EXPECT_EQ(store.Load().status().code(), StatusCode::kNotFound);
}

TEST(MetadataStoreTest, TornTrailingRecordRejected) {
  const std::string path = TempPath("meta_torn.tsv");
  MetadataStore store(path);
  ASSERT_TRUE(store.Write({{"q1", "v1", "t", 1, 2, 3}}).ok());
  // Simulate a crash mid-append: a final record with no trailing newline.
  FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("q2\tv2\tt\t4\t5", f);
  std::fclose(f);
  EXPECT_EQ(store.Load().status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(MetadataStoreTest, NonNumericCostFieldRejected) {
  const std::string path = TempPath("meta_nonnum.tsv");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("q\tv\tt\tBANANA\t2\t3\n", f);
  std::fclose(f);
  MetadataStore store(path);
  EXPECT_EQ(store.Load().status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(MetadataStoreTest, WrongFieldCountRejected) {
  const std::string path = TempPath("meta_fields.tsv");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("q\tv\tt\t1\t2\n", f);
  std::fclose(f);
  MetadataStore store(path);
  EXPECT_EQ(store.Load().status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(MetadataStoreTest, FailedWriteKeepsPreviousStore) {
  const std::string path = TempPath("meta_atomic.tsv");
  MetadataStore store(path);
  ASSERT_TRUE(store.Write({{"q1", "v1", "t", 1, 2, 3}}).ok());
  // A record that fails validation aborts the temp write; the committed
  // store must be untouched.
  EXPECT_FALSE(store.Write({{"bad\tfield", "v", "t", 4, 5, 6}}).ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].query_sql, "q1");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace autoview
