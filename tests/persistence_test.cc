#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/metadata.h"
#include "nn/modules.h"
#include "nn/serialize.h"
#include "util/random.h"

namespace autoview {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(5);
  nn::Mlp source({4, 8, 1}, &rng);
  nn::Mlp target({4, 8, 1}, &rng);
  const std::string path = TempPath("model.avnn");
  ASSERT_TRUE(nn::SaveParameters(source.Parameters(), path).ok());

  auto params = target.Parameters();
  ASSERT_TRUE(nn::LoadParameters(path, &params).ok());
  nn::Tensor x = nn::Tensor::Uniform(3, 4, 1.0, &rng);
  nn::Tensor a = source.Forward(x);
  nn::Tensor b = target.Forward(x);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, PeekShapes) {
  Rng rng(5);
  nn::Lstm lstm(3, 4, &rng);
  const std::string path = TempPath("lstm.avnn");
  ASSERT_TRUE(nn::SaveParameters(lstm.Parameters(), path).ok());
  auto shapes = nn::PeekShapes(path);
  ASSERT_TRUE(shapes.ok());
  ASSERT_EQ(shapes.value().size(), 2u);
  EXPECT_EQ(shapes.value()[0].first, 3u + 4u);   // fused gate weights
  EXPECT_EQ(shapes.value()[0].second, 4u * 4u);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(5);
  nn::Mlp small({2, 3, 1}, &rng);
  nn::Mlp big({2, 5, 1}, &rng);
  const std::string path = TempPath("mismatch.avnn");
  ASSERT_TRUE(nn::SaveParameters(small.Parameters(), path).ok());
  auto params = big.Parameters();
  EXPECT_FALSE(nn::LoadParameters(path, &params).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.avnn");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a model", f);
  std::fclose(f);
  Rng rng(5);
  nn::Mlp mlp({2, 2, 1}, &rng);
  auto params = mlp.Parameters();
  EXPECT_FALSE(nn::LoadParameters(path, &params).ok());
  EXPECT_FALSE(nn::PeekShapes(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileRejected) {
  Rng rng(5);
  nn::Mlp mlp({2, 2, 1}, &rng);
  auto params = mlp.Parameters();
  EXPECT_EQ(nn::LoadParameters("/nonexistent/model.avnn", &params).code(),
            StatusCode::kNotFound);
}

TEST(MetadataStoreTest, WriteLoadRoundTrip) {
  const std::string path = TempPath("meta.tsv");
  MetadataStore store(path);
  std::vector<MetadataRecord> records = {
      {"select a from t", "select a from t where a = 1", "t", 0.5, 1.5, 1.0},
      {"select b from u", "select b from u where b = 2", "t,u", 0.25, 2.0,
       1.75},
  };
  ASSERT_TRUE(store.Write(records).ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].query_sql, records[0].query_sql);
  EXPECT_EQ(loaded.value()[1].tables, "t,u");
  EXPECT_DOUBLE_EQ(loaded.value()[1].rewritten_cost, 0.25);
  std::remove(path.c_str());
}

TEST(MetadataStoreTest, AppendAccumulates) {
  const std::string path = TempPath("meta_append.tsv");
  MetadataStore store(path);
  ASSERT_TRUE(store.Write({{"q1", "v1", "t", 1, 2, 3}}).ok());
  ASSERT_TRUE(store.Append({{"q2", "v2", "t", 4, 5, 6}}).ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[1].query_sql, "q2");
  std::remove(path.c_str());
}

TEST(MetadataStoreTest, RejectsFieldsWithSeparators) {
  MetadataStore store(TempPath("meta_bad.tsv"));
  EXPECT_FALSE(store.Write({{"a\tb", "v", "t", 1, 2, 3}}).ok());
  EXPECT_FALSE(store.Write({{"a\nb", "v", "t", 1, 2, 3}}).ok());
}

TEST(MetadataStoreTest, MissingFileIsNotFound) {
  MetadataStore store("/nonexistent/meta.tsv");
  EXPECT_EQ(store.Load().status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace autoview
