#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "plan/plan.h"

namespace autoview {
namespace {

/// Test fixture with the paper's Fig. 2 schema.
class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddTable(TableSchema(
                        "user_memo", {{"user_id", ColumnType::kInt64},
                                      {"memo", ColumnType::kString},
                                      {"dt", ColumnType::kString},
                                      {"memo_type", ColumnType::kString}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable(TableSchema(
                        "user_action", {{"user_id", ColumnType::kInt64},
                                        {"action", ColumnType::kString},
                                        {"type", ColumnType::kInt64},
                                        {"dt", ColumnType::kString}}))
                    .ok());
  }

  PlanNodePtr MustBuild(const std::string& sql) {
    PlanBuilder builder(&catalog_);
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }

  Catalog catalog_;
};

constexpr const char* kFig2Sql =
    "select t1.user_id, count(*) as cnt from ("
    "select user_id, memo from user_memo "
    "where dt = '1010' and memo_type = 'pen') t1 "
    "inner join (select user_id, action from user_action "
    "where type = 1 and dt = '1010') t2 "
    "on t1.user_id = t2.user_id group by t1.user_id";

TEST_F(PlanTest, ScanOutputsTableSchema) {
  auto plan = MustBuild("SELECT * FROM user_memo");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->op(), PlanOp::kTableScan);
  EXPECT_EQ(plan->num_output_columns(), 4u);
  EXPECT_EQ(plan->output()[0].name, "user_id");
}

TEST_F(PlanTest, UnknownTableFails) {
  PlanBuilder builder(&catalog_);
  auto r = builder.BuildFromSql("SELECT * FROM nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(PlanTest, UnknownColumnFails) {
  PlanBuilder builder(&catalog_);
  EXPECT_FALSE(builder.BuildFromSql("SELECT nope FROM user_memo").ok());
}

TEST_F(PlanTest, FilterKeepsSchema) {
  auto plan = MustBuild("SELECT * FROM user_memo WHERE dt = '1010'");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->op(), PlanOp::kFilter);
  EXPECT_EQ(plan->num_output_columns(), 4u);
  EXPECT_EQ(plan->child(0)->op(), PlanOp::kTableScan);
}

TEST_F(PlanTest, ProjectRenames) {
  auto plan = MustBuild("SELECT user_id AS uid, memo FROM user_memo");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->op(), PlanOp::kProject);
  EXPECT_EQ(plan->output()[0].name, "uid");
  EXPECT_EQ(plan->output()[1].name, "memo");
}

TEST_F(PlanTest, Fig2PlanShape) {
  auto plan = MustBuild(kFig2Sql);
  ASSERT_NE(plan, nullptr);
  // Aggregate -> Join -> two Project -> Filter -> Scan chains.
  EXPECT_EQ(plan->op(), PlanOp::kAggregate);
  const auto& join = plan->child(0);
  EXPECT_EQ(join->op(), PlanOp::kJoin);
  EXPECT_EQ(join->child(0)->op(), PlanOp::kProject);
  EXPECT_EQ(join->child(1)->op(), PlanOp::kProject);
  EXPECT_EQ(join->child(0)->child(0)->op(), PlanOp::kFilter);
  EXPECT_EQ(join->child(0)->child(0)->child(0)->op(), PlanOp::kTableScan);
  EXPECT_EQ(plan->NumOperators(), 8u);
  EXPECT_EQ(plan->Height(), 5u);
  // Output: group key + count.
  ASSERT_EQ(plan->num_output_columns(), 2u);
  EXPECT_EQ(plan->output()[1].name, "cnt");
  EXPECT_EQ(plan->output()[1].type, ColumnType::kInt64);
}

TEST_F(PlanTest, JoinDisambiguatesDuplicateNames) {
  auto plan = MustBuild(
      "SELECT m.user_id FROM user_memo m INNER JOIN user_action a "
      "ON m.user_id = a.user_id");
  ASSERT_NE(plan, nullptr);
  const auto& join = plan->child(0);
  ASSERT_EQ(join->op(), PlanOp::kJoin);
  ASSERT_EQ(join->num_output_columns(), 8u);
  EXPECT_EQ(join->output()[0].name, "user_id");
  EXPECT_EQ(join->output()[4].name, "user_id_2");
  EXPECT_EQ(join->output()[7].name, "dt_2");
}

TEST_F(PlanTest, AmbiguousUnqualifiedColumnFails) {
  PlanBuilder builder(&catalog_);
  auto r = builder.BuildFromSql(
      "SELECT user_id FROM user_memo m INNER JOIN user_action a "
      "ON m.user_id = a.user_id");
  EXPECT_FALSE(r.ok());
}

TEST_F(PlanTest, SelectedColumnMustBeGrouped) {
  PlanBuilder builder(&catalog_);
  EXPECT_FALSE(
      builder.BuildFromSql("SELECT memo, COUNT(*) FROM user_memo GROUP BY dt")
          .ok());
}

TEST_F(PlanTest, FeatureSequenceIsPreOrder) {
  auto plan = MustBuild(kFig2Sql);
  ASSERT_NE(plan, nullptr);
  auto seq = plan->FeatureSequence();
  ASSERT_EQ(seq.size(), 8u);
  EXPECT_EQ(seq[0][0], "Aggregate");
  EXPECT_EQ(seq[1][0], "Join");
  EXPECT_EQ(seq[2][0], "Project");
  EXPECT_EQ(seq[3][0], "Filter");
  EXPECT_EQ(seq[4][0], "Scan");
  EXPECT_EQ(seq[4][1], "user_memo");
  EXPECT_EQ(seq[7][1], "user_action");
}

TEST_F(PlanTest, FilterFeatureTokensArePrefixNotation) {
  auto plan = MustBuild(
      "SELECT * FROM user_memo WHERE dt = '1010' AND memo_type = 'pen'");
  ASSERT_NE(plan, nullptr);
  auto tokens = plan->FeatureTokens();
  // [Filter, AND, EQ, dt, '1010', EQ, memo_type, 'pen'] per Fig. 4.
  std::vector<std::string> expected = {"Filter",      "AND",    "EQ",
                                       "dt",          "'1010'", "EQ",
                                       "memo_type",   "'pen'"};
  EXPECT_EQ(tokens, expected);
}

TEST_F(PlanTest, ToStringMatchesFig2Style) {
  auto plan = MustBuild(kFig2Sql);
  ASSERT_NE(plan, nullptr);
  std::string s = plan->ToString();
  EXPECT_NE(s.find("Aggregate(group=[{user_id}], cnt=[COUNT()])"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("Join(condition=[EQ(user_id, user_id_2)], "
                   "joinType=[inner])"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("TableScan(table=[[user_memo]])"), std::string::npos) << s;
}

TEST_F(PlanTest, HashingStableAndDiscriminating) {
  auto p1 = MustBuild(kFig2Sql);
  auto p2 = MustBuild(kFig2Sql);
  auto p3 = MustBuild("SELECT * FROM user_memo WHERE dt = '1010'");
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_EQ(p1->Hash(), p2->Hash());
  EXPECT_TRUE(p1->Equals(*p2));
  EXPECT_NE(p1->Hash(), p3->Hash());
  EXPECT_FALSE(p1->Equals(*p3));
}

TEST_F(PlanTest, OverlapMatchesPaperExample) {
  auto q = MustBuild(kFig2Sql);
  ASSERT_NE(q, nullptr);
  // s1 = left Project subtree, s2 = right Project subtree, s3 = Join.
  auto s3 = q->child(0);
  auto s1 = s3->child(0);
  auto s2 = s3->child(1);
  EXPECT_TRUE(PlansOverlap(*s3, *s1));
  EXPECT_TRUE(PlansOverlap(*s3, *s2));
  EXPECT_FALSE(PlansOverlap(*s1, *s2));
  EXPECT_TRUE(PlansOverlap(*q, *s3));
}

TEST_F(PlanTest, CanonicalIgnoresConjunctOrder) {
  auto a = MustBuild(
      "SELECT * FROM user_memo WHERE dt = '1010' AND memo_type = 'pen'");
  auto b = MustBuild(
      "SELECT * FROM user_memo WHERE memo_type = 'pen' AND dt = '1010'");
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(a->Equals(*b));  // structurally different...
  EXPECT_TRUE(PlansEquivalent(*a, *b));  // ...semantically equal
}

TEST_F(PlanTest, CanonicalIgnoresComparisonOrientation) {
  auto a = MustBuild("SELECT * FROM user_action WHERE type = 1");
  auto b = MustBuild("SELECT * FROM user_action WHERE 1 = type");
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(PlansEquivalent(*a, *b));
  auto c = MustBuild("SELECT * FROM user_action WHERE type < 5");
  auto d = MustBuild("SELECT * FROM user_action WHERE 5 > type");
  ASSERT_TRUE(c && d);
  EXPECT_TRUE(PlansEquivalent(*c, *d));
  EXPECT_FALSE(PlansEquivalent(*a, *c));
}

TEST_F(PlanTest, CanonicalIgnoresJoinOrder) {
  auto a = MustBuild(
      "SELECT m.user_id FROM user_memo m INNER JOIN user_action a "
      "ON m.user_id = a.user_id");
  auto b = MustBuild(
      "SELECT a.user_id FROM user_action a INNER JOIN user_memo m "
      "ON m.user_id = a.user_id");
  ASSERT_TRUE(a && b);
  // Compare the join subtrees (projection names differ by position).
  EXPECT_TRUE(PlansEquivalent(*a->child(0), *b->child(0)));
}

TEST_F(PlanTest, CanonicalDistinguishesDifferentLiterals) {
  auto a = MustBuild("SELECT * FROM user_action WHERE type = 1");
  auto b = MustBuild("SELECT * FROM user_action WHERE type = 2");
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(PlansEquivalent(*a, *b));
}

TEST_F(PlanTest, ScannedTables) {
  auto q = MustBuild(kFig2Sql);
  ASSERT_NE(q, nullptr);
  std::vector<std::string> expected = {"user_action", "user_memo"};
  EXPECT_EQ(q->ScannedTables(), expected);
}

}  // namespace
}  // namespace autoview
