// Tests for MvsProblemIndex and the incremental selection engines.
//
// The contract under test is strict: the incremental engines must be
// *bit-identical* to the naive ones — same flip sequence, same
// per-iteration utilities, same final solution — for any seed, size,
// restart count, thread count, and deadline outcome. The naive
// implementations stay in the tree precisely to serve as the oracle
// here (and as the baseline of bench/bench_selection_scale.cc).

#include "ilp/problem_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "generators.h"
#include "ilp/compact_problem.h"
#include "ilp/problem.h"
#include "select/iterview.h"
#include "select/rlview.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace autoview {
namespace {

using testing::RandomProblem;
using testing::RandomSparseProblem;

// ---------------------------------------------------------------------
// Index structure.

TEST(ProblemIndexTest, StructureMatchesDenseMatrix) {
  const MvsProblem p = RandomSparseProblem(40, 120, /*seed=*/7, 0.08,
                                           /*negative_fraction=*/0.2);
  const MvsProblemIndex index(p);

  size_t nonzero = 0, positive = 0;
  for (size_t i = 0; i < p.num_queries(); ++i) {
    // CSR row: exactly the positive entries, ascending view order.
    size_t pos = 0;
    for (size_t j = 0; j < p.num_views(); ++j) {
      if (p.benefit[i][j] > 0) {
        ASSERT_LT(pos, index.Row(i).size());
        EXPECT_EQ(index.Row(i)[pos].index, j);
        EXPECT_EQ(index.Row(i)[pos].benefit, p.benefit[i][j]);
        ++pos;
      }
      if (p.benefit[i][j] != 0.0) ++nonzero;
      if (p.benefit[i][j] > 0) ++positive;
    }
    EXPECT_EQ(index.Row(i).size(), pos);
    // The benefit-descending permutation is genuinely descending.
    const auto& order = index.RowByBenefit(i);
    ASSERT_EQ(order.size(), index.Row(i).size());
    for (size_t q = 1; q < order.size(); ++q) {
      EXPECT_GE(index.Row(i)[order[q - 1]].benefit,
                index.Row(i)[order[q]].benefit);
    }
  }
  EXPECT_EQ(index.NumNonzero(), nonzero);
  EXPECT_EQ(index.NumPositive(), positive);

  for (size_t j = 0; j < p.num_views(); ++j) {
    // Inverted column: all nonzero entries (negatives included),
    // ascending query order — the RLView affected-query set.
    size_t pos = 0;
    for (size_t i = 0; i < p.num_queries(); ++i) {
      if (p.benefit[i][j] != 0.0) {
        ASSERT_LT(pos, index.Column(j).size());
        EXPECT_EQ(index.Column(j)[pos].index, i);
        EXPECT_EQ(index.Column(j)[pos].benefit, p.benefit[i][j]);
        ++pos;
      }
    }
    EXPECT_EQ(index.Column(j).size(), pos);
    // Adjacency mirrors the overlap row.
    size_t adj = 0;
    for (size_t k = 0; k < p.num_views(); ++k) {
      if (p.overlap[j][k]) {
        ASSERT_LT(adj, index.Overlapping(j).size());
        EXPECT_EQ(index.Overlapping(j)[adj], k);
        ++adj;
      }
    }
    EXPECT_EQ(index.Overlapping(j).size(), adj);
    // Memoized aggregates are bit-identical to the dense derivations.
    EXPECT_EQ(index.MaxBenefit(j), p.MaxBenefit(j));
  }
  double o_total = 0.0, b_total = 0.0;
  for (size_t j = 0; j < p.num_views(); ++j) {
    o_total += p.overhead[j];
    b_total += p.MaxBenefit(j);
  }
  EXPECT_EQ(index.TotalOverhead(), o_total);
  EXPECT_EQ(index.TotalMaxBenefit(), b_total);
}

TEST(ProblemIndexTest, SparseUtilityAndBenefitAreBitIdentical) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const MvsProblem p = RandomProblem(25, 60, seed);
    const MvsProblemIndex index(p);
    YOptSolver yopt(&p, &index);
    Rng rng(seed * 31);
    std::vector<bool> z(p.num_views());
    for (size_t j = 0; j < z.size(); ++j) z[j] = rng.Bernoulli(0.5);
    const auto y = yopt.SolveAll(z);

    EXPECT_EQ(index.EvaluateUtilitySparse(z, y), EvaluateUtility(p, z, y));
    for (size_t j = 0; j < p.num_views(); ++j) {
      double dense = 0.0;
      for (size_t i = 0; i < p.num_queries(); ++i) {
        if (y[i][j] && p.benefit[i][j] > 0) dense += p.benefit[i][j];
      }
      EXPECT_EQ(index.CurrentBenefit(j, y), dense);
    }
  }
}

TEST(ProblemIndexTest, IndexedYOptMatchesDense) {
  // Includes rows with deliberately tied benefits, which must take the
  // per-subset re-sort path rather than the precomputed order.
  MvsProblem p = RandomSparseProblem(30, 80, /*seed=*/11, 0.1);
  for (size_t j = 5; j < 15; ++j) p.benefit[3][j] = 1.25;  // ties
  for (size_t j = 20; j < 26; ++j) p.benefit[7][j] = 0.5;  // more ties
  const MvsProblemIndex index(p);
  YOptSolver dense(&p);
  YOptSolver indexed(&p, &index);
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> z(p.num_views());
    for (size_t j = 0; j < z.size(); ++j) z[j] = rng.Bernoulli(0.6);
    for (size_t i = 0; i < p.num_queries(); ++i) {
      EXPECT_EQ(dense.SolveQuery(i, z), indexed.SolveQuery(i, z))
          << "query " << i << " trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------
// Engine equivalence: IterView / BigSub.

void ExpectSameSolution(const MvsSolution& a, const MvsSolution& b) {
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.utility, b.utility);  // bitwise: both sides are doubles
  EXPECT_EQ(a.timed_out, b.timed_out);
}

IterViewSelector::Options IterOptions(SelectionEngine engine, uint64_t seed,
                                      size_t iterations, size_t restarts,
                                      ThreadPool* pool) {
  IterViewSelector::Options o;
  o.engine = engine;
  o.seed = seed;
  o.iterations = iterations;
  o.restarts = restarts;
  o.pool = pool;
  return o;
}

TEST(IncrementalEquivalenceTest, IterViewMatchesNaiveAcrossSeeds) {
  const struct {
    size_t nq, nz;
    double density;
  } kShapes[] = {{12, 30, 0.35}, {40, 100, 0.05}, {25, 60, 0.15}};
  for (const auto& shape : kShapes) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      const MvsProblem p =
          shape.density > 0.2
              ? RandomProblem(shape.nq, shape.nz, seed)
              : RandomSparseProblem(shape.nq, shape.nz, seed, shape.density,
                                    /*negative_fraction=*/0.15);
      IterViewSelector naive(IterOptions(SelectionEngine::kNaive, seed, 25,
                                         /*restarts=*/1, nullptr));
      IterViewSelector fast(IterOptions(SelectionEngine::kIncremental, seed,
                                        25, /*restarts=*/1, nullptr));
      auto a = naive.Select(p);
      auto b = fast.Select(p);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectSameSolution(a.value(), b.value());
      // Bit-identical per-iteration utilities, not just the winner.
      EXPECT_EQ(naive.utility_trace(), fast.utility_trace())
          << "nq=" << shape.nq << " nz=" << shape.nz << " seed=" << seed;
    }
  }
}

TEST(IncrementalEquivalenceTest, BigSubFreezingMatchesNaive) {
  const MvsProblem p = RandomSparseProblem(30, 80, /*seed=*/5, 0.08);
  for (uint64_t seed : {3u, 17u}) {
    IterViewSelector naive = IterViewSelector::BigSub(30, seed);
    IterViewSelector::Options fast_opts = naive.options();
    // BigSub's factory predates the engine option; both defaults are
    // incremental, so pin the oracle explicitly.
    IterViewSelector::Options naive_opts = naive.options();
    naive_opts.engine = SelectionEngine::kNaive;
    fast_opts.engine = SelectionEngine::kIncremental;
    IterViewSelector oracle(naive_opts), fast(fast_opts);
    auto a = oracle.Select(p);
    auto b = fast.Select(p);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSameSolution(a.value(), b.value());
    EXPECT_EQ(oracle.utility_trace(), fast.utility_trace());
  }
}

TEST(IncrementalEquivalenceTest, RestartsAndThreadCountsAgree) {
  const MvsProblem p = RandomSparseProblem(20, 50, /*seed=*/21, 0.1);
  ThreadPool one(1), four(4);
  Result<MvsSolution> reference =
      IterViewSelector(
          IterOptions(SelectionEngine::kNaive, 9, 15, /*restarts=*/5, &one))
          .Select(p);
  ASSERT_TRUE(reference.ok());
  for (ThreadPool* pool : {&one, &four}) {
    for (SelectionEngine engine :
         {SelectionEngine::kNaive, SelectionEngine::kIncremental}) {
      IterViewSelector selector(
          IterOptions(engine, 9, 15, /*restarts=*/5, pool));
      auto got = selector.Select(p);
      ASSERT_TRUE(got.ok());
      ExpectSameSolution(reference.value(), got.value());
    }
  }
}

// ---------------------------------------------------------------------
// Engine equivalence: RLView (delta rewards + no-grad DQN scoring).

RLViewSelector::Options RlOptions(SelectionEngine engine, uint64_t seed) {
  RLViewSelector::Options o;
  o.engine = engine;
  o.seed = seed;
  o.init_iterations = 4;
  o.episodes = 3;
  o.max_steps_per_episode = 6;
  o.min_memory = 8;
  o.batch_size = 4;
  return o;
}

TEST(IncrementalEquivalenceTest, RLViewMatchesNaive) {
  for (uint64_t seed : {2u, 13u}) {
    const MvsProblem p = RandomSparseProblem(15, 24, seed, 0.12,
                                             /*negative_fraction=*/0.1);
    RLViewSelector naive(RlOptions(SelectionEngine::kNaive, seed));
    RLViewSelector fast(RlOptions(SelectionEngine::kIncremental, seed));
    auto a = naive.Select(p);
    auto b = fast.Select(p);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSameSolution(a.value(), b.value());
    EXPECT_EQ(naive.utility_trace(), fast.utility_trace()) << "seed " << seed;
  }
}

TEST(IncrementalEquivalenceTest, RLViewVariantsMatchNaive) {
  const MvsProblem p = RandomSparseProblem(12, 20, /*seed=*/8, 0.15);
  for (const bool dueling : {false, true}) {
    for (const size_t target_sync : {size_t{0}, size_t{2}}) {
      RLViewSelector::Options naive_opts = RlOptions(SelectionEngine::kNaive, 5);
      naive_opts.dueling = dueling;
      naive_opts.target_sync_every = target_sync;
      RLViewSelector::Options fast_opts = naive_opts;
      fast_opts.engine = SelectionEngine::kIncremental;
      RLViewSelector naive(naive_opts), fast(fast_opts);
      auto a = naive.Select(p);
      auto b = fast.Select(p);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectSameSolution(a.value(), b.value());
      EXPECT_EQ(naive.utility_trace(), fast.utility_trace())
          << "dueling=" << dueling << " target_sync=" << target_sync;
    }
  }
}

// ---------------------------------------------------------------------
// Deadline / cancellation equivalence.

TEST(IncrementalEquivalenceTest, ExpiredDeadlineGivesSameIncumbent) {
  // Wall-clock budgets are not reproducible, but an already-expired
  // deadline is: both engines observe expiry at the same poll point, so
  // they must return the same (timed-out, feasible) incumbent.
  const MvsProblem p = RandomSparseProblem(18, 40, /*seed=*/4, 0.1);
  for (SelectionEngine engine :
       {SelectionEngine::kNaive, SelectionEngine::kIncremental}) {
    IterViewSelector::Options o =
        IterOptions(engine, 6, 20, /*restarts=*/2, nullptr);
    o.deadline = Deadline::AfterMillis(0.0);
    IterViewSelector selector(o);
    auto got = selector.Select(p);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value().timed_out);
    EXPECT_GE(got.value().utility, 0.0);
    EXPECT_TRUE(IsFeasible(p, got.value().z, got.value().y));
  }
  // The two engines agree bitwise on the timed-out incumbent.
  IterViewSelector::Options na =
      IterOptions(SelectionEngine::kNaive, 6, 20, 2, nullptr);
  IterViewSelector::Options inc =
      IterOptions(SelectionEngine::kIncremental, 6, 20, 2, nullptr);
  na.deadline = Deadline::AfterMillis(0.0);
  inc.deadline = Deadline::AfterMillis(0.0);
  IterViewSelector a(na), b(inc);
  auto ra = a.Select(p);
  auto rb = b.Select(p);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ExpectSameSolution(ra.value(), rb.value());
  EXPECT_EQ(a.utility_trace(), b.utility_trace());
}

TEST(IncrementalEquivalenceTest, CancelledTokenGivesSameIncumbent) {
  const MvsProblem p = RandomSparseProblem(15, 30, /*seed=*/2, 0.1);
  CancellationToken cancelled;
  cancelled.RequestCancel();
  std::vector<MvsSolution> solutions;
  std::vector<std::vector<double>> traces;
  for (SelectionEngine engine :
       {SelectionEngine::kNaive, SelectionEngine::kIncremental}) {
    RLViewSelector::Options o = RlOptions(engine, 3);
    o.cancel = cancelled;
    RLViewSelector selector(o);
    auto got = selector.Select(p);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value().timed_out);
    solutions.push_back(got.value());
    traces.push_back(selector.utility_trace());
  }
  ExpectSameSolution(solutions[0], solutions[1]);
  EXPECT_EQ(traces[0], traces[1]);
}

// ---------------------------------------------------------------------
// Operation counters: the incremental reward path reads O(affected)
// benefit cells, the naive one O(|Q| x |Z|) per evaluation.

TEST(IncrementalEquivalenceTest, RewardCostDropsFromDenseToSparse) {
  const size_t nq = 40, nz = 120;
  const MvsProblem p = RandomSparseProblem(nq, nz, /*seed=*/6, 0.05);
  const MvsProblemIndex index(p);

  auto run = [&](SelectionEngine engine) {
    GlobalSelection().Reset();
    RLViewSelector selector(RlOptions(engine, 7));
    auto got = selector.Select(p);
    EXPECT_TRUE(got.ok());
    return GlobalSelection().Read();
  };
  const auto naive = run(SelectionEngine::kNaive);
  const auto incremental = run(SelectionEngine::kIncremental);

  // Identical work shape implies the same evaluation count; each naive
  // evaluation reads the full dense matrix, each incremental one only
  // the sparse support (~5% here — require at least a 5x drop).
  ASSERT_GT(naive.utility_cells, 0u);
  ASSERT_GT(incremental.utility_cells, 0u);
  EXPECT_LE(incremental.utility_cells * 5, naive.utility_cells);
  // Per-step Y-Opt work: the naive environment step already re-solved
  // only affected queries; the incremental engine must not do more.
  EXPECT_LE(incremental.queries_solved, naive.queries_solved);
  // And the sparse reward read is exactly the positive support.
  EXPECT_EQ(incremental.utility_cells %
                static_cast<uint64_t>(index.NumPositive()),
            0u);
}

// ---------------------------------------------------------------------
// Compressed-CSR shards: exact decode and compact-vs-dense index
// identity. The varint/delta encoding must round-trip every row bit-
// exactly (benefits are raw IEEE-754 bytes), and an index built from
// shards must equal the dense-built index field for field.

TEST(CompressedRowStoreTest, RoundTripsRowsExactly) {
  for (const size_t budget : {1u, 64u, 1u << 20}) {
    CompressedRowStore store(budget);
    const std::vector<std::vector<CompressedRowStore::Entry>> rows = {
        {},
        {{0, 1.5}},
        {{3, -2.25}, {4, 1e-300}, {200, 3.141592653589793}},
        {},
        {{7, -0.0}, {1000000, 42.0}},
    };
    for (const auto& row : rows) store.AppendRow(row);
    ASSERT_EQ(store.num_rows(), rows.size());
    EXPECT_EQ(store.num_entries(), 6u);
    std::vector<CompressedRowStore::Entry> decoded;
    for (size_t i = 0; i < rows.size(); ++i) {
      store.DecodeRow(i, &decoded);
      ASSERT_EQ(decoded.size(), rows[i].size()) << "row " << i;
      for (size_t n = 0; n < rows[i].size(); ++n) {
        EXPECT_EQ(decoded[n].index, rows[i][n].index);
        // Bit-exact including -0.0 and denormal-range values.
        EXPECT_EQ(std::signbit(decoded[n].benefit),
                  std::signbit(rows[i][n].benefit));
        EXPECT_EQ(decoded[n].benefit, rows[i][n].benefit);
      }
    }
    // A 1-byte budget forces one shard per row; a big budget packs all.
    if (budget == 1) {
      EXPECT_GE(store.num_shards(), 3u);
    }
  }
}

TEST(CompressedRowStoreTest, ForEachEntryMatchesDecodeRow) {
  const MvsProblem p = RandomSparseProblem(30, 80, /*seed=*/21, 0.1, 0.3);
  const auto compact = CompactMvsProblem::FromDense(p, /*budget=*/128);
  std::vector<CompressedRowStore::Entry> decoded;
  for (size_t i = 0; i < p.num_queries(); ++i) {
    compact.rows.DecodeRow(i, &decoded);
    size_t n = 0;
    compact.rows.ForEachEntry(i, [&](size_t view, double benefit) {
      ASSERT_LT(n, decoded.size());
      EXPECT_EQ(view, decoded[n].index);
      EXPECT_EQ(benefit, decoded[n].benefit);
      ++n;
    });
    EXPECT_EQ(n, decoded.size());
    // And the decoded row is exactly the nonzero cells of the dense row.
    size_t nonzero = 0;
    for (size_t j = 0; j < p.num_views(); ++j) {
      if (p.benefit[i][j] == 0.0) continue;
      ASSERT_LT(nonzero, decoded.size());
      EXPECT_EQ(decoded[nonzero].index, j);
      EXPECT_EQ(decoded[nonzero].benefit, p.benefit[i][j]);
      ++nonzero;
    }
    EXPECT_EQ(nonzero, decoded.size());
  }
}

TEST(CompactProblemTest, IndexFromShardsEqualsIndexFromDense) {
  for (const uint64_t seed : {3u, 17u, 91u}) {
    for (const size_t budget : {32u, 1u << 20}) {
      const MvsProblem p =
          RandomSparseProblem(45, 130, seed, 0.07, /*negative=*/0.25);
      const auto compact = CompactMvsProblem::FromDense(p, budget);
      ASSERT_TRUE(compact.Validate().ok());

      const MvsProblemIndex dense(p);
      const MvsProblemIndex sparse(compact);
      ASSERT_EQ(dense.num_queries(), sparse.num_queries());
      ASSERT_EQ(dense.num_views(), sparse.num_views());
      for (size_t i = 0; i < dense.num_queries(); ++i) {
        ASSERT_EQ(dense.Row(i).size(), sparse.Row(i).size());
        for (size_t n = 0; n < dense.Row(i).size(); ++n) {
          EXPECT_EQ(dense.Row(i)[n].index, sparse.Row(i)[n].index);
          EXPECT_EQ(dense.Row(i)[n].benefit, sparse.Row(i)[n].benefit);
        }
        EXPECT_EQ(dense.RowByBenefit(i), sparse.RowByBenefit(i));
        EXPECT_EQ(dense.RowHasTies(i), sparse.RowHasTies(i));
      }
      for (size_t j = 0; j < dense.num_views(); ++j) {
        ASSERT_EQ(dense.Column(j).size(), sparse.Column(j).size());
        for (size_t n = 0; n < dense.Column(j).size(); ++n) {
          EXPECT_EQ(dense.Column(j)[n].index, sparse.Column(j)[n].index);
          EXPECT_EQ(dense.Column(j)[n].benefit, sparse.Column(j)[n].benefit);
        }
        EXPECT_EQ(dense.Overlapping(j), sparse.Overlapping(j));
        EXPECT_EQ(dense.MaxBenefit(j), sparse.MaxBenefit(j));
      }
      EXPECT_EQ(dense.Overhead(), sparse.Overhead());
      EXPECT_EQ(dense.TotalOverhead(), sparse.TotalOverhead());
      EXPECT_EQ(dense.TotalMaxBenefit(), sparse.TotalMaxBenefit());
      EXPECT_EQ(dense.NumNonzero(), sparse.NumNonzero());
      EXPECT_EQ(dense.NumPositive(), sparse.NumPositive());
    }
  }
}

TEST(CompactProblemTest, SelectIndexedFromShardsMatchesDenseSelect) {
  for (const uint64_t seed : {5u, 23u}) {
    const MvsProblem p = RandomSparseProblem(35, 90, seed, 0.08, 0.2);
    const auto compact = CompactMvsProblem::FromDense(p, /*budget=*/64);
    const MvsProblemIndex index(compact);

    IterViewSelector::Options options;
    options.iterations = 80;
    options.seed = seed;
    for (const size_t restarts : {1u, 3u}) {
      options.restarts = restarts;
      IterViewSelector selector(options);
      const auto sharded = selector.SelectIndexed(index);
      ASSERT_TRUE(sharded.ok());

      IterViewSelector::Options naive = options;
      naive.engine = SelectionEngine::kNaive;
      const auto dense = IterViewSelector(naive).Select(p);
      ASSERT_TRUE(dense.ok());

      EXPECT_EQ(sharded.value().z, dense.value().z);
      EXPECT_EQ(sharded.value().y, dense.value().y);
      EXPECT_EQ(sharded.value().utility, dense.value().utility);
    }
  }
}

TEST(CompactProblemTest, BuilderValidatesAdjacency) {
  ShardedProblemBuilder builder(/*budget=*/256);
  // Asymmetric adjacency must be rejected at Finalize.
  builder.SetViews({1.0, 2.0}, {{1}, {}});
  builder.AddRow({{0, 1.0}});
  EXPECT_FALSE(std::move(builder).Finalize().ok());
}

}  // namespace
}  // namespace autoview
