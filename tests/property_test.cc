// Property-based (parameterized) suites: invariants checked across
// seed/shape sweeps rather than single examples.

#include <gtest/gtest.h>

#include <cmath>

#include "engine/executor.h"
#include "generators.h"
#include "engine/rewriter.h"
#include "engine/view_store.h"
#include "nn/modules.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "select/iterview.h"
#include "select/rlview.h"
#include "sql/parser.h"
#include "subquery/extractor.h"
#include "util/metrics.h"
#include "util/random.h"
#include "workload/generator.h"

namespace autoview {
namespace {

// ---------------------------------------------------------------------------
// SQL round-trip: for every generated workload query, parse -> render ->
// re-parse must be a fixed point, and both parses must plan to
// structurally equal trees.
// ---------------------------------------------------------------------------

class SqlRoundTripP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlRoundTripP, ParseRenderReparseFixpoint) {
  CloudWorkloadSpec spec;
  spec.projects = 2;
  spec.queries = 25;
  spec.min_rows = 60;
  spec.max_rows = 120;
  spec.subquery_pool = 8;
  spec.seed = GetParam();
  GeneratedWorkload wk = GenerateCloudWorkload(spec);
  PlanBuilder builder(&wk.db->catalog());
  for (const auto& sql : wk.sql) {
    auto ast1 = ParseSelect(sql);
    ASSERT_TRUE(ast1.ok()) << sql;
    const std::string rendered = ast1.value()->ToString();
    auto ast2 = ParseSelect(rendered);
    ASSERT_TRUE(ast2.ok()) << rendered;
    EXPECT_EQ(ast2.value()->ToString(), rendered);
    auto p1 = builder.Build(*ast1.value());
    auto p2 = builder.Build(*ast2.value());
    ASSERT_TRUE(p1.ok() && p2.ok());
    EXPECT_TRUE(p1.value()->Equals(*p2.value()));
    EXPECT_EQ(CanonicalKey(*p1.value()), CanonicalKey(*p2.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Engine invariants across seeds: filters select subsets; canonical-
// equivalent plans produce identical result bags; every extracted
// subquery executes; materialize+rewrite preserves results.
// ---------------------------------------------------------------------------

class EngineInvariantsP : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    CloudWorkloadSpec spec;
    spec.projects = 2;
    spec.queries = 15;
    spec.min_rows = 150;
    spec.max_rows = 400;
    spec.subquery_pool = 6;
    spec.seed = GetParam();
    wk_ = GenerateCloudWorkload(spec);
    builder_ = std::make_unique<PlanBuilder>(&wk_->db->catalog());
  }

  GeneratedWorkload* wk_ptr() { return wk_.operator->(); }

  std::optional<GeneratedWorkload> wk_;
  std::unique_ptr<PlanBuilder> builder_;
};

TEST_P(EngineInvariantsP, EquivalentPlansGiveIdenticalResults) {
  Executor exec(wk_->db.get());
  // Group the workload's subqueries by canonical key; execute one pair
  // per multi-member cluster and compare result bags (sorted by the
  // common column names).
  SubqueryExtractor extractor;
  std::map<std::string, PlanNodePtr> seen;
  size_t compared = 0;
  for (const auto& sql : wk_->sql) {
    auto plan = builder_->BuildFromSql(sql);
    ASSERT_TRUE(plan.ok());
    for (const auto& sub : extractor.Extract(plan.value())) {
      const std::string key = CanonicalKey(*sub);
      auto [it, inserted] = seen.emplace(key, sub);
      if (inserted || compared > 10) continue;
      // Equivalent subqueries must produce equal result bags (the
      // foundation of reusing one materialized view for all of them).
      auto a = exec.Execute(*it->second);
      auto b = exec.Execute(*sub);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a.value().table.num_rows(), b.value().table.num_rows());
      ++compared;
    }
  }
}

TEST_P(EngineInvariantsP, FilterOutputIsSubsetAndDeterministic) {
  Executor exec(wk_->db.get());
  for (size_t i = 0; i < 5 && i < wk_->sql.size(); ++i) {
    auto plan = builder_->BuildFromSql(wk_->sql[i]);
    ASSERT_TRUE(plan.ok());
    for (const auto& node : plan.value()->Subtrees()) {
      if (node->op() != PlanOp::kFilter) continue;
      auto filtered = exec.Execute(*node);
      auto input = exec.Execute(*node->child(0));
      ASSERT_TRUE(filtered.ok() && input.ok());
      EXPECT_LE(filtered.value().table.num_rows(),
                input.value().table.num_rows());
      auto again = exec.Execute(*node);
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(TablesEqualUnordered(filtered.value().table,
                                       again.value().table));
      EXPECT_EQ(filtered.value().cost.cpu_units, again.value().cost.cpu_units);
    }
  }
}

TEST_P(EngineInvariantsP, MaterializeRewriteRoundTrip) {
  Executor exec(wk_->db.get());
  MaterializedViewStore store(wk_->db.get());
  Rewriter rewriter(&wk_->db->catalog());
  SubqueryExtractor extractor;
  size_t verified = 0;
  for (const auto& sql : wk_->sql) {
    if (verified >= 6) break;
    auto plan = builder_->BuildFromSql(sql);
    ASSERT_TRUE(plan.ok());
    auto subs = extractor.Extract(plan.value());
    if (subs.empty()) continue;
    auto view = store.Materialize(subs[0], exec);
    if (!view.ok()) continue;  // already materialized for an earlier query
    bool changed = false;
    auto rewritten = rewriter.Rewrite(plan.value(), *view.value(), &changed);
    ASSERT_TRUE(rewritten.ok());
    ASSERT_TRUE(changed);
    auto before = exec.Execute(*plan.value());
    auto after = exec.Execute(*rewritten.value());
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_TRUE(
        TablesEqualUnordered(before.value().table, after.value().table))
        << sql;
    ++verified;
  }
  EXPECT_GT(verified, 0u);
  ASSERT_TRUE(store.Clear().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariantsP,
                         ::testing::Values(11, 12, 13, 14, 15));

// ---------------------------------------------------------------------------
// Selector invariants across random instances: feasibility always holds,
// the reported utility matches EvaluateUtility, and the exact OPT
// dominates heuristics.
// ---------------------------------------------------------------------------

using testing::RandomProblem;

class SelectorInvariantsP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectorInvariantsP, AllMethodsFeasibleAndSelfConsistent) {
  MvsProblem p = RandomProblem(12, 10, GetParam());
  std::vector<std::unique_ptr<ViewSelector>> selectors;
  selectors.push_back(std::make_unique<TopkSelector>(TopkStrategy::kBenefit, 4));
  selectors.push_back(std::make_unique<TopkSelector>(TopkStrategy::kNormalized, 6));
  selectors.push_back(std::make_unique<IterViewSelector>(
      IterViewSelector::IterView(25, GetParam())));
  selectors.push_back(std::make_unique<IterViewSelector>(
      IterViewSelector::BigSub(25, GetParam())));
  RLViewSelector::Options rl;
  rl.init_iterations = 5;
  rl.episodes = 4;
  rl.seed = GetParam();
  selectors.push_back(std::make_unique<RLViewSelector>(rl));
  for (auto& selector : selectors) {
    auto result = selector->Select(p);
    ASSERT_TRUE(result.ok()) << selector->name();
    EXPECT_TRUE(IsFeasible(p, result.value().z, result.value().y))
        << selector->name();
    EXPECT_NEAR(result.value().utility,
                EvaluateUtility(p, result.value().z, result.value().y), 1e-9)
        << selector->name();
    EXPECT_FALSE(selector->utility_trace().empty()) << selector->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorInvariantsP,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// ---------------------------------------------------------------------------
// Autograd gradient checks across module shapes.
// ---------------------------------------------------------------------------

struct GradShape {
  size_t in;
  size_t hidden;
  size_t seq;
};

class LstmGradP : public ::testing::TestWithParam<GradShape> {};

TEST_P(LstmGradP, MatchesNumericGradient) {
  const GradShape shape = GetParam();
  Rng rng(shape.in * 31 + shape.hidden * 7 + shape.seq);
  nn::Lstm lstm(shape.in, shape.hidden, &rng);
  nn::Tensor seq = nn::Tensor::Uniform(shape.seq, shape.in, 1.0, &rng);

  auto loss_fn = [&] { return Sum(lstm.Forward(seq)); };
  for (auto p : lstm.Parameters()) p.ZeroGrad();
  loss_fn().Backward();
  std::vector<std::vector<nn::Scalar>> analytic;
  for (const auto& p : lstm.Parameters()) analytic.push_back(p.grad());

  const nn::Scalar h = 1e-5;
  auto params = lstm.Parameters();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    // Spot-check a deterministic subset of coordinates to keep runtime
    // bounded across the sweep.
    for (size_t j = 0; j < params[pi].size(); j += 7) {
      nn::Tensor p = params[pi];
      const nn::Scalar original = p.data()[j];
      p.mutable_data()[j] = original + h;
      const nn::Scalar up = loss_fn().item();
      p.mutable_data()[j] = original - h;
      const nn::Scalar down = loss_fn().item();
      p.mutable_data()[j] = original;
      const nn::Scalar numeric = (up - down) / (2 * h);
      EXPECT_NEAR(analytic[pi][j], numeric,
                  1e-4 * std::max(1.0, std::fabs(numeric)))
          << "param " << pi << " index " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LstmGradP,
                         ::testing::Values(GradShape{2, 3, 1},
                                           GradShape{3, 5, 4},
                                           GradShape{6, 4, 6},
                                           GradShape{4, 8, 2}));

// ---------------------------------------------------------------------------
// Zipf sampler: bounds, determinism, and monotone skew across exponents.
// ---------------------------------------------------------------------------

class ZipfP : public ::testing::TestWithParam<double> {};

TEST_P(ZipfP, BoundedAndSkewIncreasesWithS) {
  const double s = GetParam();
  Rng rng(99);
  const int64_t n = 50;
  size_t head = 0;
  for (int i = 0; i < 4000; ++i) {
    int64_t v = rng.Zipf(n, s);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    head += v < 5;
  }
  // Under uniform (s=0) the head holds ~10%; skew grows with s.
  const double frac = static_cast<double>(head) / 4000.0;
  if (s == 0.0) {
    EXPECT_NEAR(frac, 0.1, 0.03);
  } else if (s >= 1.0) {
    EXPECT_GT(frac, 0.4);
  } else {
    EXPECT_GT(frac, 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfP,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace autoview
