// Serving fast path: the indexed single-walk rewrite must be
// EXPECT_EQ-identical to the sequential per-view oracle across
// seeds x view counts x generations (including nested and
// duplicate-subtree matches), the generation-keyed rewrite cache must
// hit/miss/invalidate exactly per its contract (including self-healing
// after an eviction invalidates a cached entry's pins), the whole
// RewriteServing path must stay correct under a concurrent PinLive /
// swap hammer, and the blocked inference GEMM must match the exact
// kernel to a tight relative epsilon (NaN/Inf rows and zero-skip edges
// included).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/rewriter.h"
#include "engine/view_store.h"
#include "nn/modules.h"
#include "nn/tensor.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/strings.h"

namespace autoview {
namespace {

/// Fixture loading the paper's Fig. 2 schema with synthetic rows, plus
/// a parameterized query family whose subtrees serve as view candidates.
class RewriteFastPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Row> memo_rows;
    for (int i = 0; i < 200; ++i) {
      memo_rows.push_back({Value(int64_t{i % 40}),
                           Value("memo" + std::to_string(i % 7)),
                           Value(i % 3 == 0 ? "1010" : "1011"),
                           Value(i % 5 < 2 ? "pen" : "book")});
    }
    ASSERT_TRUE(db_.AddTable(TableSchema("user_memo",
                                         {{"user_id", ColumnType::kInt64},
                                          {"memo", ColumnType::kString},
                                          {"dt", ColumnType::kString},
                                          {"memo_type", ColumnType::kString}}),
                             std::move(memo_rows))
                    .ok());
    std::vector<Row> action_rows;
    for (int i = 0; i < 300; ++i) {
      action_rows.push_back({Value(int64_t{i % 50}),
                             Value("act" + std::to_string(i % 5)),
                             Value(int64_t{i % 4}),
                             Value(i % 3 == 0 ? "1010" : "1012")});
    }
    ASSERT_TRUE(
        db_.AddTable(TableSchema("user_action",
                                 {{"user_id", ColumnType::kInt64},
                                  {"action", ColumnType::kString},
                                  {"type", ColumnType::kInt64},
                                  {"dt", ColumnType::kString}}),
                     std::move(action_rows))
            .ok());
    ASSERT_TRUE(db_.ComputeAllStats().ok());
  }

  PlanNodePtr MustBuild(const std::string& sql) {
    PlanBuilder builder(&db_.catalog());
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }

  /// The Fig. 2 query shape with parameterized filter constants: its
  /// join subtree and both filter-project legs are view candidates.
  PlanNodePtr Fig2Query(const std::string& dt, const std::string& memo_type,
                        int type) {
    return MustBuild(StrFormat(
        "select t1.user_id, count(*) as cnt from ("
        "select user_id, memo from user_memo "
        "where dt = '%s' and memo_type = '%s') t1 "
        "inner join (select user_id, action from user_action "
        "where type = %d and dt = '%s') t2 "
        "on t1.user_id = t2.user_id group by t1.user_id",
        dt.c_str(), memo_type.c_str(), type, dt.c_str()));
  }

  /// The query family for the oracle-equivalence sweep, plus every
  /// distinct view-candidate subtree of it (join subtrees and both
  /// legs of each Fig. 2 instance, and a few standalone filters).
  void BuildFamily(std::vector<PlanNodePtr>* queries,
                   std::vector<PlanNodePtr>* candidates) {
    for (const char* dt : {"1010", "1011"}) {
      for (int type : {0, 1}) {
        PlanNodePtr q = Fig2Query(dt, "pen", type);
        ASSERT_NE(q, nullptr);
        queries->push_back(q);
        candidates->push_back(q->child(0));               // join subtree
        candidates->push_back(q->child(0)->child(0));     // memo leg
        candidates->push_back(q->child(0)->child(1));     // action leg
      }
    }
    queries->push_back(MustBuild(
        "SELECT user_id, action FROM user_action WHERE type = 2"));
    candidates->push_back(queries->back());
    queries->push_back(MustBuild("SELECT * FROM user_memo"));
  }

  ExecResult MustExecute(const PlanNodePtr& plan) {
    Executor exec(&db_);
    auto r = exec.Execute(*plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : ExecResult{};
  }

  /// Asserts the indexed walk produces exactly the oracle's plan (same
  /// ToString, same Equals, same substitution count) for `query` given
  /// the store's current live set.
  void ExpectIndexedMatchesOracle(const Rewriter& rewriter,
                                  MaterializedViewStore* store,
                                  const PlanNodePtr& query) {
    ViewSetSnapshot pinned = store->PinLive();
    size_t seq_subs = 0;
    auto seq = rewriter.RewriteAll(query, pinned.views(), &seq_subs);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();

    size_t idx_subs = 0;
    std::vector<int64_t> used_ids;
    auto idx = rewriter.RewriteAllIndexed(query, store->view_index(),
                                          &idx_subs, &used_ids);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();

    EXPECT_EQ(seq_subs, idx_subs);
    EXPECT_TRUE(seq.value()->Equals(*idx.value()));
    EXPECT_EQ(seq.value()->ToString(), idx.value()->ToString());
    // The reported ids are exactly the views whose backing tables the
    // rewritten plan scans: pinning them must succeed and be ascending.
    for (size_t i = 1; i < used_ids.size(); ++i) {
      EXPECT_LT(used_ids[i - 1], used_ids[i]);
    }
    auto pins = store->PinViews(used_ids);
    ASSERT_TRUE(pins.ok()) << pins.status().ToString();
    EXPECT_EQ(pins.value().views().size(), used_ids.size());
  }

  Database db_;
};

TEST_F(RewriteFastPathTest, IndexedMatchesOracleAcrossSeedsAndGenerations) {
  std::vector<PlanNodePtr> queries;
  std::vector<PlanNodePtr> candidates;
  BuildFamily(&queries, &candidates);
  ASSERT_FALSE(queries.empty());
  ASSERT_FALSE(candidates.empty());

  Executor exec(&db_);
  Rewriter rewriter(&db_.catalog());
  for (uint64_t seed : {1u, 7u, 23u}) {
    for (size_t view_count : {size_t{1}, size_t{4}, candidates.size()}) {
      MaterializedViewStore store(&db_, ViewStoreOptions{});
      // A seed-shuffled subset of the candidates becomes generation 1.
      std::vector<PlanNodePtr> pool = candidates;
      Rng rng(Rng::StreamSeed(seed, view_count));
      rng.Shuffle(&pool);
      size_t installed = 0;
      for (const PlanNodePtr& cand : pool) {
        if (installed >= view_count) break;
        // Duplicate canonical keys in the pool fail AlreadyExists; the
        // subset is whatever distinct prefix fits.
        if (store.Materialize(cand, exec).ok()) ++installed;
      }
      ASSERT_GT(installed, 0u);
      for (const PlanNodePtr& query : queries) {
        ExpectIndexedMatchesOracle(rewriter, &store, query);
      }

      // Generation swap to a different shuffled subset: the index must
      // track retirements and fresh installs identically.
      uint64_t staged = store.BeginSwap();
      rng.Shuffle(&pool);
      MaterializeOptions mopts;
      mopts.generation = staged;
      installed = 0;
      for (const PlanNodePtr& cand : pool) {
        if (installed >= view_count) break;
        if (store.Materialize(cand, exec, mopts).ok()) ++installed;
      }
      ASSERT_TRUE(store.CommitSwap(staged).ok());
      for (const PlanNodePtr& query : queries) {
        ExpectIndexedMatchesOracle(rewriter, &store, query);
      }
      // Stores share db_: drop this store's backing tables so the next
      // configuration's id counter cannot collide with leftovers.
      ASSERT_TRUE(store.Clear().ok());
    }
  }
}

TEST_F(RewriteFastPathTest, IndexedReplaysNestedMatchOrder) {
  Executor exec(&db_);
  Rewriter rewriter(&db_.catalog());
  PlanNodePtr query = Fig2Query("1010", "pen", 1);

  // Inner leg first (lower id): the oracle substitutes the leg, which
  // destroys the outer join subtree's key before the outer view's walk.
  {
    MaterializedViewStore store(&db_, ViewStoreOptions{});
    ASSERT_TRUE(store.Materialize(query->child(0)->child(0), exec).ok());
    ASSERT_TRUE(store.Materialize(query->child(0), exec).ok());
    ExpectIndexedMatchesOracle(rewriter, &store, query);
    ASSERT_TRUE(store.Clear().ok());
  }
  // Outer subtree first (lower id): the oracle substitutes the whole
  // join, hiding the inner leg from the later view.
  {
    MaterializedViewStore store(&db_, ViewStoreOptions{});
    ASSERT_TRUE(store.Materialize(query->child(0), exec).ok());
    ASSERT_TRUE(store.Materialize(query->child(0)->child(0), exec).ok());
    ExpectIndexedMatchesOracle(rewriter, &store, query);
    ASSERT_TRUE(store.Clear().ok());
  }
}

TEST_F(RewriteFastPathTest, IndexedRewritesDuplicateSubtrees) {
  // The same canonical subtree appears twice in one plan: both
  // occurrences substitute, but the distinct-view count is 1.
  PlanNodePtr query = MustBuild(
      "select a.user_id from ("
      "select user_id, memo from user_memo where dt = '1010') a "
      "inner join (select user_id, memo from user_memo where dt = '1010') b "
      "on a.user_id = b.user_id");
  ASSERT_NE(query, nullptr);
  Executor exec(&db_);
  MaterializedViewStore store(&db_, ViewStoreOptions{});
  ASSERT_TRUE(store.Materialize(query->child(0), exec).ok());

  Rewriter rewriter(&db_.catalog());
  ExpectIndexedMatchesOracle(rewriter, &store, query);
  size_t subs = 0;
  std::vector<int64_t> ids;
  auto idx = rewriter.RewriteAllIndexed(query, store.view_index(), &subs,
                                        &ids);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(subs, 1u);
  ASSERT_EQ(ids.size(), 1u);
  auto original = MustExecute(query);
  auto after = MustExecute(idx.value());
  EXPECT_TRUE(TablesEqualUnordered(original.table, after.table));
}

TEST_F(RewriteFastPathTest, ServingCacheHitsAndInvalidatesOnSwap) {
  GlobalRewriteCache().Reset();
  Executor exec(&db_);
  MaterializedViewStore store(&db_, ViewStoreOptions{});
  PlanNodePtr query = Fig2Query("1010", "pen", 1);
  ASSERT_TRUE(store.Materialize(query->child(0), exec).ok());

  Rewriter rewriter(&db_.catalog());
  auto original = MustExecute(query);

  // First request misses and populates; the result substitutes the view.
  auto first = rewriter.RewriteServing(query, &store);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().cache_hit);
  EXPECT_EQ(first.value().num_substitutions, 1u);
  EXPECT_EQ(first.value().pins.views().size(), 1u);
  auto snap = GlobalRewriteCache().Read();
  EXPECT_EQ(snap.hits, 0u);
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.inserts, 1u);

  // Second request hits; the pinned plan matches the first bit-for-bit
  // and still answers the query correctly.
  auto second = rewriter.RewriteServing(query, &store);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().plan->ToString(), first.value().plan->ToString());
  snap = GlobalRewriteCache().Read();
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.misses, 1u);
  auto after = MustExecute(second.value().plan);
  EXPECT_TRUE(TablesEqualUnordered(original.table, after.table));

  // A generation swap invalidates wholesale: the next request is a miss
  // against the new view set (which no longer covers the join subtree).
  uint64_t staged = store.BeginSwap();
  MaterializeOptions mopts;
  mopts.generation = staged;
  ASSERT_TRUE(store.Materialize(query->child(0)->child(1), exec, mopts).ok());
  ASSERT_TRUE(store.CommitSwap(staged).ok());
  EXPECT_EQ(store.rewrite_cache().size(), 0u);
  snap = GlobalRewriteCache().Read();
  EXPECT_EQ(snap.invalidation_sweeps, 1u);
  EXPECT_EQ(snap.invalidated_entries, 1u);

  auto third = rewriter.RewriteServing(query, &store);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.value().cache_hit);
  EXPECT_EQ(third.value().num_substitutions, 1u);  // the action leg
  snap = GlobalRewriteCache().Read();
  EXPECT_EQ(snap.misses, 2u);
  auto swapped = MustExecute(third.value().plan);
  EXPECT_TRUE(TablesEqualUnordered(original.table, swapped.table));
}

TEST_F(RewriteFastPathTest, ServingHealsCacheAfterEviction) {
  GlobalRewriteCache().Reset();
  Executor exec(&db_);
  MaterializedViewStore store(&db_, ViewStoreOptions{});
  PlanNodePtr query = Fig2Query("1010", "pen", 1);
  auto view = store.Materialize(query->child(0), exec);
  ASSERT_TRUE(view.ok());
  int64_t view_id = view.value()->id;

  Rewriter rewriter(&db_.catalog());
  auto first = rewriter.RewriteServing(query, &store);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().num_substitutions, 1u);
  first.value().pins.Release();

  // Same-generation drop: the cached entry's pins can no longer be
  // taken. The next request must detect that (pin failure), erase the
  // entry, re-walk, and come back with the unrewritten plan — never a
  // plan scanning the dropped table.
  ASSERT_TRUE(store.Drop(view_id).ok());
  auto healed = rewriter.RewriteServing(query, &store);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_FALSE(healed.value().cache_hit);
  EXPECT_EQ(healed.value().num_substitutions, 0u);
  EXPECT_TRUE(healed.value().plan->Equals(*query));
  auto snap = GlobalRewriteCache().Read();
  EXPECT_EQ(snap.pin_failures, 1u);
  auto original = MustExecute(query);
  auto after = MustExecute(healed.value().plan);
  EXPECT_TRUE(TablesEqualUnordered(original.table, after.table));
}

TEST_F(RewriteFastPathTest, ServingSurvivesConcurrentPinAndSwapHammer) {
  GlobalRewriteCache().Reset();
  Executor exec(&db_);
  MaterializedViewStore store(&db_, ViewStoreOptions{});
  PlanNodePtr query = Fig2Query("1010", "pen", 1);
  std::vector<PlanNodePtr> cands = {query->child(0), query->child(0)->child(0),
                                    query->child(0)->child(1)};
  ASSERT_TRUE(store.Materialize(cands[0], exec).ok());
  auto original = MustExecute(query);

  Rewriter rewriter(&db_.catalog());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Servers: RewriteServing + execute-under-pin, checking every answer.
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&]() {
      Executor local_exec(&db_);
      while (!stop.load(std::memory_order_relaxed)) {
        auto serving = rewriter.RewriteServing(query, &store);
        if (!serving.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto result = local_exec.Execute(*serving.value().plan);
        if (!result.ok() ||
            !TablesEqualUnordered(original.table, result.value().table)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Pin hammer: full-store snapshots taken and released continuously.
  threads.emplace_back([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      ViewSetSnapshot snapshot = store.PinLive();
      snapshot.Release();
    }
  });

  // Main thread: generation swaps rotating through view subsets.
  for (int round = 0; round < 20; ++round) {
    uint64_t staged = store.BeginSwap();
    MaterializeOptions mopts;
    mopts.generation = staged;
    ASSERT_TRUE(
        store.Materialize(cands[round % cands.size()], exec, mopts).ok());
    ASSERT_TRUE(store.CommitSwap(staged).ok());
  }
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Blocked GEMM vs exact oracle ---------------------------------------

/// |blocked - exact| <= eps * max(|exact|, 1): reassociation-only error.
void ExpectGemmClose(const std::vector<nn::Scalar>& exact,
                     const std::vector<nn::Scalar>& blocked) {
  ASSERT_EQ(exact.size(), blocked.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    if (std::isnan(exact[i])) {
      EXPECT_TRUE(std::isnan(blocked[i])) << "index " << i;
    } else if (std::isinf(exact[i])) {
      EXPECT_EQ(exact[i], blocked[i]) << "index " << i;
    } else {
      EXPECT_NEAR(exact[i], blocked[i],
                  1e-12 * std::max(std::abs(exact[i]), 1.0))
          << "index " << i;
    }
  }
}

TEST(GemmOracleTest, BlockedMatchesExactAcrossShapes) {
  Rng rng(99);
  // Shapes straddling every tile boundary: k < lane width, n < column
  // tile, exact multiples, and ragged tails on both dimensions.
  const size_t shapes[][3] = {{1, 1, 1},  {1, 3, 1},  {2, 4, 4},
                              {3, 7, 5},  {5, 16, 8}, {8, 17, 9},
                              {4, 64, 3}, {7, 33, 13}};
  for (const auto& shape : shapes) {
    const size_t m = shape[0], k = shape[1], n = shape[2];
    std::vector<nn::Scalar> a(m * k), bt(n * k);
    for (auto& v : a) v = rng.Uniform(-2.0, 2.0);
    for (auto& v : bt) v = rng.Uniform(-2.0, 2.0);
    // Sprinkle exact zeros so the zero-skip select path exercises both
    // branches within one accumulation.
    for (size_t i = 0; i < a.size(); i += 3) a[i] = 0.0;
    std::vector<nn::Scalar> exact(m * n), blocked(m * n);
    nn::MatMulTBExact(a.data(), m, k, bt.data(), n, exact.data());
    nn::MatMulTBBlocked(a.data(), m, k, bt.data(), n, blocked.data());
    ExpectGemmClose(exact, blocked);
  }
}

TEST(GemmOracleTest, BlockedPropagatesNanAndInf) {
  const size_t m = 3, k = 9, n = 5;
  Rng rng(5);
  std::vector<nn::Scalar> a(m * k), bt(n * k);
  for (auto& v : a) v = rng.Uniform(-1.0, 1.0);
  for (auto& v : bt) v = rng.Uniform(-1.0, 1.0);
  // Row 0 carries a NaN in the lane body and one in the tail; row 1
  // carries +/-inf. The zero-skip select must not skip them (a NaN
  // operand compares != 0, and its product must reach the sum).
  a[0 * k + 2] = std::nan("");
  a[0 * k + 8] = std::nan("");
  a[1 * k + 1] = std::numeric_limits<nn::Scalar>::infinity();
  a[1 * k + 7] = -std::numeric_limits<nn::Scalar>::infinity();
  std::vector<nn::Scalar> exact(m * n), blocked(m * n);
  nn::MatMulTBExact(a.data(), m, k, bt.data(), n, exact.data());
  nn::MatMulTBBlocked(a.data(), m, k, bt.data(), n, blocked.data());
  for (size_t j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isnan(exact[0 * n + j]));
  }
  ExpectGemmClose(exact, blocked);
}

TEST(GemmOracleTest, ZeroRowsAndColumnsSkipExactly) {
  const size_t m = 2, k = 8, n = 3;
  std::vector<nn::Scalar> a(m * k, 0.0), bt(n * k);
  Rng rng(11);
  for (auto& v : bt) v = rng.Uniform(-3.0, 3.0);
  a[1 * k + 0] = 1.0;  // row 1 picks out bt column 0
  std::vector<nn::Scalar> exact(m * n), blocked(m * n);
  nn::MatMulTBExact(a.data(), m, k, bt.data(), n, exact.data());
  nn::MatMulTBBlocked(a.data(), m, k, bt.data(), n, blocked.data());
  for (size_t j = 0; j < n; ++j) {
    // All-zero row: both kernels produce exact +0.0.
    EXPECT_EQ(exact[j], 0.0);
    EXPECT_EQ(blocked[j], 0.0);
    // Unit row: both reduce to the picked element, bit-exactly.
    EXPECT_EQ(exact[n + j], bt[j * k]);
    EXPECT_EQ(blocked[n + j], bt[j * k]);
  }
}

TEST(GemmOracleTest, KernelDispatchAndMlpInference) {
  // Default dispatch is the exact kernel (deterministic tests rely on
  // it); SetGemmKernel overrides process-wide and MlpInference follows.
  ASSERT_EQ(nn::ActiveGemmKernel(), nn::GemmKernel::kExact);
  Rng rng(3);
  nn::Mlp mlp({6, 8, 4}, &rng);
  std::vector<nn::Scalar> input(2 * 6);
  for (auto& v : input) v = rng.Uniform(-1.0, 1.0);

  nn::MlpInference inference(&mlp);
  std::vector<nn::Scalar> exact = inference.Forward(input.data(), 2);

  nn::SetGemmKernel(nn::GemmKernel::kBlocked);
  ASSERT_EQ(nn::ActiveGemmKernel(), nn::GemmKernel::kBlocked);
  std::vector<nn::Scalar> blocked = inference.Forward(input.data(), 2);
  nn::SetGemmKernel(nn::GemmKernel::kExact);

  ASSERT_EQ(exact.size(), blocked.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(exact[i], blocked[i],
                1e-12 * std::max(std::abs(exact[i]), 1.0));
  }
}

}  // namespace
}  // namespace autoview
