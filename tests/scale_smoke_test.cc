// Paper-scale smoke tests (ctest labels: perf;scale).
//
// The claim under test is the tentpole of the sharded pipeline: the
// FULL Table I workloads — WK1 = 38.6k queries / ~389 tables, WK2 =
// 157.6k queries / ~435 tables — flow end-to-end through streaming
// clustering, sharded benefit-matrix construction, and deadline-bounded
// incremental selection WITHOUT ever materializing the dense |Q| x |Z|
// matrix, inside a documented memory bound. WK1-full always runs here;
// WK2-full (the 157.6k row) is gated behind AUTOVIEW_SCALE_FULL=1 so an
// ordinary ctest pass stays fast.
//
// The second half pins correctness at verification size: the index
// built from compressed-CSR shards must be EXPECT_EQ-identical, field
// by field, to the index built from the dense oracle matrix — and the
// selections made from both must coincide exactly.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/loadgen.h"
#include "core/streaming_problem.h"
#include "ilp/problem_index.h"
#include "plan/builder.h"
#include "select/iterview.h"
#include "subquery/clusterer.h"
#include "workload/generator.h"

namespace autoview {
namespace {

/// Documented peak-RSS bound for the full-scale pipeline runs, in MB.
/// Derivation: at WK2-full scale (|Q| ~ 157.6k associated queries,
/// |Z| ~ 50k candidates) the resident structures are the generated SQL
/// text + catalog (tens of MB), per-query cluster aggregates (O(|Q|)
/// counters, no retained plans), the compressed CSR shards plus the
/// Entry-array index over the nonzeros (a few MB — the matrix is very
/// sparse), and — the dominant term — the solver's bit-packed y
/// assignment: |Q| x |Z| BITS per copy, ~1 GB, with the trial keeping
/// its working copy and incumbent. Measured peak is ~3.2 GB; the dense
/// double matrix this pipeline replaces would alone be |Q| x |Z| x 8
/// bytes ~ 63 GB. 4 GB holds the measured peak with headroom while
/// still failing loudly if a dense benefit allocation sneaks back in.
/// (WK1-full measures ~0.4 GB against the same bound.)
constexpr double kPeakRssBoundMb = 4096.0;

/// Re-parse-on-demand QueryFn over a generated workload: the streaming
/// contract (re-invocable, thread-safe for distinct indices, plans die
/// with the caller).
SubqueryClusterer::QueryFn MakeQueryFn(const GeneratedWorkload& workload) {
  return [&workload](size_t qi) -> PlanNodePtr {
    PlanBuilder builder(&workload.db->catalog());
    Result<PlanNodePtr> plan = builder.BuildFromSql(workload.sql[qi]);
    return plan.ok() ? std::move(plan).value() : nullptr;
  };
}

/// Runs the full sharded pipeline on `spec` and checks the scale claims
/// plus the memory bound.
void RunFullScalePipeline(const CloudWorkloadSpec& spec,
                          size_t expected_queries, size_t expected_tables) {
  const GeneratedWorkload workload = GenerateCloudWorkload(spec);
  ASSERT_EQ(workload.sql.size(), expected_queries);
  EXPECT_EQ(workload.db->catalog().num_tables(), expected_tables);

  const auto query_fn = MakeQueryFn(workload);
  const SubqueryClusterer clusterer;
  const WorkloadAnalysis analysis =
      clusterer.AnalyzeStreaming(workload.sql.size(), query_fn);
  EXPECT_GT(analysis.candidates.size(), 0u);
  // Streaming clustering retains no plans: occurrence counts are
  // aggregate-only.
  for (const SubqueryCluster& cluster : analysis.clusters) {
    EXPECT_TRUE(cluster.occurrences.empty());
    EXPECT_GT(cluster.num_occurrences(), 0u);
  }

  StreamingProblemOptions options;
  const Result<StreamingProblem> problem =
      BuildStreamingProblem(workload.db->catalog(), analysis, query_fn,
                            options);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  const CompactMvsProblem& compact = problem.value().compact;
  EXPECT_EQ(compact.rows.num_rows(), analysis.associated_queries.size());
  EXPECT_GT(compact.rows.num_entries(), 0u);
  // The shard budget really bounds shard size: every sealed shard holds
  // at most the budget (the open tail shard and single oversized rows
  // are the documented exceptions; with a 1 MB budget no row here comes
  // close).
  EXPECT_GT(compact.rows.num_shards(), 0u);

  const MvsProblemIndex index(compact);
  IterViewSelector::Options select;
  select.iterations = 40;
  select.seed = 1234;
  select.deadline = Deadline::AfterMillis(60e3);
  IterViewSelector selector(select);
  const Result<MvsSolution> solution = selector.SelectIndexed(index);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution.value().z.size(), index.num_views());
  EXPECT_GE(solution.value().utility, 0.0);

  const double rss_mb =
      static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0);
  EXPECT_LT(rss_mb, kPeakRssBoundMb)
      << "full-scale pipeline exceeded the documented memory bound";
}

TEST(ScaleSmokeTest, Wk1FullPipelineUnderMemoryBound) {
  RunFullScalePipeline(Wk1FullSpec(), /*expected_queries=*/38600,
                       /*expected_tables=*/388);
}

TEST(ScaleSmokeTest, Wk2FullPipelineUnderMemoryBound) {
  if (std::getenv("AUTOVIEW_SCALE_FULL") == nullptr) {
    GTEST_SKIP() << "WK2-full (157.6k queries) runs with "
                    "AUTOVIEW_SCALE_FULL=1";
  }
  RunFullScalePipeline(Wk2FullSpec(), /*expected_queries=*/157600,
                       /*expected_tables=*/436);
}

// ---------------------------------------------------------------------
// Sharded-vs-dense bit identity at verification size.

void ExpectIndexesIdentical(const MvsProblemIndex& a,
                            const MvsProblemIndex& b) {
  ASSERT_EQ(a.num_queries(), b.num_queries());
  ASSERT_EQ(a.num_views(), b.num_views());
  for (size_t i = 0; i < a.num_queries(); ++i) {
    ASSERT_EQ(a.Row(i).size(), b.Row(i).size()) << "row " << i;
    for (size_t n = 0; n < a.Row(i).size(); ++n) {
      EXPECT_EQ(a.Row(i)[n].index, b.Row(i)[n].index);
      EXPECT_EQ(a.Row(i)[n].benefit, b.Row(i)[n].benefit);
    }
    EXPECT_EQ(a.RowByBenefit(i), b.RowByBenefit(i));
    EXPECT_EQ(a.RowHasTies(i), b.RowHasTies(i));
  }
  for (size_t j = 0; j < a.num_views(); ++j) {
    ASSERT_EQ(a.Column(j).size(), b.Column(j).size()) << "column " << j;
    for (size_t n = 0; n < a.Column(j).size(); ++n) {
      EXPECT_EQ(a.Column(j)[n].index, b.Column(j)[n].index);
      EXPECT_EQ(a.Column(j)[n].benefit, b.Column(j)[n].benefit);
    }
    EXPECT_EQ(a.Overlapping(j), b.Overlapping(j));
    EXPECT_EQ(a.MaxBenefit(j), b.MaxBenefit(j));
  }
  EXPECT_EQ(a.Overhead(), b.Overhead());
  EXPECT_EQ(a.TotalOverhead(), b.TotalOverhead());
  EXPECT_EQ(a.TotalMaxBenefit(), b.TotalMaxBenefit());
  EXPECT_EQ(a.NumNonzero(), b.NumNonzero());
  EXPECT_EQ(a.NumPositive(), b.NumPositive());
}

TEST(ScaleSmokeTest, ShardedCsrMatchesDenseOracleAtReducedScale) {
  for (const bool wk2 : {false, true}) {
    const CloudWorkloadSpec spec = wk2 ? Wk2Spec(0.5) : Wk1Spec(0.5);
    const GeneratedWorkload workload = GenerateCloudWorkload(spec);
    const auto query_fn = MakeQueryFn(workload);
    const SubqueryClusterer clusterer;
    const WorkloadAnalysis analysis =
        clusterer.AnalyzeStreaming(workload.sql.size(), query_fn);

    // Tiny shard budget to force many shards — the layout under test.
    StreamingProblemOptions options;
    options.shard_budget_bytes = 256;
    const Result<StreamingProblem> sharded = BuildStreamingProblem(
        workload.db->catalog(), analysis, query_fn, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    const Result<MvsProblem> dense = BuildDenseProblem(
        workload.db->catalog(), analysis, query_fn, options);
    ASSERT_TRUE(dense.ok()) << dense.status().ToString();

    if (sharded.value().compact.rows.num_entries() > 0) {
      EXPECT_GT(sharded.value().compact.rows.num_shards(), 1u);
    }

    const MvsProblemIndex from_shards(sharded.value().compact);
    const MvsProblemIndex from_dense(dense.value());
    ExpectIndexesIdentical(from_shards, from_dense);

    // And the selections coincide exactly: dense Select(kIncremental)
    // routes through the dense-built index, SelectIndexed through the
    // sharded one — identical inputs, identical bits out.
    IterViewSelector::Options select;
    select.iterations = 60;
    select.seed = 99;
    IterViewSelector selector(select);
    const Result<MvsSolution> a = selector.SelectIndexed(from_shards);
    ASSERT_TRUE(a.ok());
    IterViewSelector::Options incr = select;
    incr.engine = SelectionEngine::kIncremental;
    IterViewSelector dense_selector(incr);
    const Result<MvsSolution> b = dense_selector.Select(dense.value());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().z, b.value().z);
    EXPECT_EQ(a.value().y, b.value().y);
    EXPECT_EQ(a.value().utility, b.value().utility);
  }
}

}  // namespace
}  // namespace autoview
