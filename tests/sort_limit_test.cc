#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/rewriter.h"
#include "engine/view_store.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "sql/parser.h"
#include "util/random.h"

namespace autoview {
namespace {

/// Fixture with one small table for the DISTINCT / ORDER BY / LIMIT
/// extension of the SQL fragment.
class SortLimitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Value(int64_t{i % 10}), Value(int64_t{(i * 7) % 30}),
                      Value(i % 2 == 0 ? "even" : "odd")});
    }
    ASSERT_TRUE(db_.AddTable(TableSchema("t", {{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kInt64},
                                               {"tag", ColumnType::kString}}),
                             std::move(rows))
                    .ok());
    ASSERT_TRUE(db_.ComputeAllStats().ok());
  }

  PlanNodePtr MustBuild(const std::string& sql) {
    PlanBuilder builder(&db_.catalog());
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }

  ExecResult MustExecute(const PlanNodePtr& plan) {
    Executor exec(&db_);
    auto r = exec.Execute(*plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : ExecResult{};
  }

  Database db_;
};

TEST_F(SortLimitTest, ParserHandlesTailClauses) {
  auto plan = MustBuild(
      "SELECT DISTINCT a, b FROM t WHERE b > 3 ORDER BY b DESC, a LIMIT 7");
  ASSERT_NE(plan, nullptr);
  // Limit -> Sort -> Distinct -> Project -> Filter -> Scan.
  EXPECT_EQ(plan->op(), PlanOp::kLimit);
  EXPECT_EQ(plan->limit(), 7);
  EXPECT_EQ(plan->child(0)->op(), PlanOp::kSort);
  ASSERT_EQ(plan->child(0)->sort_keys().size(), 2u);
  EXPECT_TRUE(plan->child(0)->sort_keys()[0].descending);
  EXPECT_FALSE(plan->child(0)->sort_keys()[1].descending);
  EXPECT_EQ(plan->child(0)->child(0)->op(), PlanOp::kDistinct);
}

TEST_F(SortLimitTest, OrderByUnknownColumnRejected) {
  PlanBuilder builder(&db_.catalog());
  EXPECT_FALSE(builder.BuildFromSql("SELECT a FROM t ORDER BY zzz").ok());
}

TEST_F(SortLimitTest, SortOrdersRows) {
  auto result = MustExecute(MustBuild("SELECT a, b FROM t ORDER BY b DESC"));
  ASSERT_EQ(result.table.num_rows(), 100u);
  for (size_t i = 1; i < result.table.num_rows(); ++i) {
    EXPECT_GE(result.table.rows[i - 1][1].AsInt(),
              result.table.rows[i][1].AsInt());
  }
}

TEST_F(SortLimitTest, SortIsTotalOrderDeterministic) {
  // Ties on the sort key are broken by the full row, so two executions
  // (and executions over differently-ordered inputs) agree exactly.
  auto a = MustExecute(MustBuild("SELECT a, b FROM t ORDER BY a"));
  auto b = MustExecute(MustBuild("SELECT a, b FROM t ORDER BY a"));
  ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
  for (size_t i = 0; i < a.table.num_rows(); ++i) {
    EXPECT_EQ(a.table.rows[i][1].AsInt(), b.table.rows[i][1].AsInt());
  }
}

TEST_F(SortLimitTest, LimitTruncates) {
  auto result =
      MustExecute(MustBuild("SELECT a FROM t ORDER BY a LIMIT 5"));
  EXPECT_EQ(result.table.num_rows(), 5u);
  auto all = MustExecute(MustBuild("SELECT a FROM t LIMIT 1000"));
  EXPECT_EQ(all.table.num_rows(), 100u);
  auto zero = MustExecute(MustBuild("SELECT a FROM t LIMIT 0"));
  EXPECT_EQ(zero.table.num_rows(), 0u);
}

TEST_F(SortLimitTest, DistinctRemovesDuplicates) {
  auto result = MustExecute(MustBuild("SELECT DISTINCT a FROM t"));
  EXPECT_EQ(result.table.num_rows(), 10u);  // a = i % 10
  auto pairs = MustExecute(MustBuild("SELECT DISTINCT tag FROM t"));
  EXPECT_EQ(pairs.table.num_rows(), 2u);
}

TEST_F(SortLimitTest, SqlRoundTripWithTail) {
  const std::string sql =
      "SELECT DISTINCT a, b FROM t WHERE b > 3 ORDER BY b DESC LIMIT 7";
  auto p1 = MustBuild(sql);
  PlanBuilder builder(&db_.catalog());
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  auto p2 = builder.BuildFromSql(stmt.value()->ToString());
  ASSERT_TRUE(p2.ok()) << stmt.value()->ToString();
  EXPECT_TRUE(p1->Equals(*p2.value()));
}

TEST_F(SortLimitTest, CanonicalDistinguishesTailOperators) {
  auto sorted = MustBuild("SELECT a FROM t ORDER BY a");
  auto sorted_desc = MustBuild("SELECT a FROM t ORDER BY a DESC");
  auto limited = MustBuild("SELECT a FROM t ORDER BY a LIMIT 3");
  auto limited5 = MustBuild("SELECT a FROM t ORDER BY a LIMIT 5");
  auto distinct = MustBuild("SELECT DISTINCT a FROM t");
  EXPECT_FALSE(PlansEquivalent(*sorted, *sorted_desc));
  EXPECT_FALSE(PlansEquivalent(*sorted, *limited));
  EXPECT_FALSE(PlansEquivalent(*limited, *limited5));
  EXPECT_FALSE(PlansEquivalent(*sorted, *distinct));
  EXPECT_TRUE(PlansEquivalent(*limited, *MustBuild(
                                             "SELECT a FROM t ORDER BY a "
                                             "LIMIT 3")));
}

TEST_F(SortLimitTest, FeatureTokensForTailOperators) {
  auto plan = MustBuild("SELECT a, b FROM t ORDER BY b DESC LIMIT 7");
  auto seq = plan->FeatureSequence();
  // Limit -> Sort -> Project -> Scan, pre-order.
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0][0], "Limit");
  EXPECT_EQ(seq[0][1], "'7'");
  EXPECT_EQ(seq[1][0], "Sort");
  EXPECT_EQ(seq[1][1], "b");
  EXPECT_EQ(seq[1][2], "DESC");
}

TEST_F(SortLimitTest, RewritePreservesLimitedResults) {
  // A view materializes the projected+filtered subquery; the outer query
  // sorts and limits. The rewritten query must return the exact same
  // limited rows (guaranteed by the total-order sort).
  auto query = MustBuild(
      "SELECT s.a, s.b FROM (SELECT a, b FROM t WHERE b > 2) s "
      "ORDER BY s.b DESC, s.a LIMIT 9");
  ASSERT_NE(query, nullptr);
  // The view subquery is the Project subtree below Sort/Limit.
  PlanNodePtr view_plan = query;
  while (view_plan->op() != PlanOp::kProject) view_plan = view_plan->child(0);

  Executor exec(&db_);
  MaterializedViewStore store(&db_);
  auto view = store.Materialize(view_plan, exec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  Rewriter rewriter(&db_.catalog());
  bool changed = false;
  auto rewritten = rewriter.Rewrite(query, *view.value(), &changed);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(changed);

  auto before = MustExecute(query);
  auto after = MustExecute(rewritten.value());
  ASSERT_EQ(before.table.num_rows(), 9u);
  // Exact (ordered) equality here, not just bag equality.
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(before.table.rows[i][0].AsInt(),
              after.table.rows[i][0].AsInt());
    EXPECT_EQ(before.table.rows[i][1].AsInt(),
              after.table.rows[i][1].AsInt());
  }
}

TEST_F(SortLimitTest, CostChargesForSortAndDistinct) {
  auto plain = MustExecute(MustBuild("SELECT a FROM t"));
  auto sorted = MustExecute(MustBuild("SELECT a FROM t ORDER BY a"));
  auto distinct = MustExecute(MustBuild("SELECT DISTINCT a FROM t"));
  EXPECT_GT(sorted.cost.cpu_units, plain.cost.cpu_units);
  EXPECT_GT(distinct.cost.cpu_units, plain.cost.cpu_units);
}

TEST_F(SortLimitTest, PlanFactoriesValidate) {
  auto scan = PlanNode::MakeScan(db_.catalog(), "t").value();
  EXPECT_FALSE(PlanNode::MakeSort(scan, {}).ok());
  EXPECT_FALSE(PlanNode::MakeSort(scan, {{99, false}}).ok());
  EXPECT_FALSE(PlanNode::MakeLimit(scan, -2).ok());
  EXPECT_TRUE(PlanNode::MakeLimit(scan, 0).ok());
  EXPECT_TRUE(PlanNode::MakeDistinct(scan).ok());
  EXPECT_FALSE(PlanNode::MakeDistinct(nullptr).ok());
}

}  // namespace
}  // namespace autoview
