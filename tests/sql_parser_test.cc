#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/token.h"

namespace autoview {
namespace {

// The running example of the paper's Fig. 2.
constexpr const char* kFig2Sql = R"(
select t1.user_id, count(*) as cnt
from (
  select user_id, memo from user_memo
  where dt = '1010' and memo_type = 'pen') t1
inner join (
  select user_id, action from user_action
  where type = 1 and dt = '1010') t2
on t1.user_id = t2.user_id
group by t1.user_id;
)";

TEST(TokenizerTest, BasicTokens) {
  auto r = Tokenize("SELECT a, b FROM t WHERE x = 'hi' AND y >= 3.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& tokens = r.value();
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(TokenizerTest, KeywordsCaseInsensitive) {
  auto r = Tokenize("select From wHeRe");
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.value()[i].type, TokenType::kKeyword);
  }
  EXPECT_EQ(r.value()[0].text, "SELECT");
  EXPECT_EQ(r.value()[2].text, "WHERE");
}

TEST(TokenizerTest, StringLiteralStripsQuotes) {
  auto r = Tokenize("'pen'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(r.value()[0].text, "pen");
}

TEST(TokenizerTest, UnterminatedString) {
  auto r = Tokenize("'abc");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(TokenizerTest, MultiCharOperators) {
  auto r = Tokenize("a <= b >= c <> d != e");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[1].text, "<=");
  EXPECT_EQ(r.value()[3].text, ">=");
  EXPECT_EQ(r.value()[5].text, "<>");
  EXPECT_EQ(r.value()[7].text, "<>");  // != normalized
}

TEST(TokenizerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto r = ParseSelect("SELECT a, b FROM t WHERE a = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stmt = *r.value();
  EXPECT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.from.table, "t");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->kind, AstExprKind::kCompare);
}

TEST(ParserTest, SelectStar) {
  auto r = ParseSelect("SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->items[0].expr->kind, AstExprKind::kStar);
}

TEST(ParserTest, Fig2QueryParses) {
  auto r = ParseSelect(kFig2Sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stmt = *r.value();
  EXPECT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.items[1].alias, "cnt");
  ASSERT_TRUE(stmt.from.is_subquery());
  EXPECT_EQ(stmt.from.alias, "t1");
  ASSERT_EQ(stmt.joins.size(), 1u);
  EXPECT_EQ(stmt.joins[0].right.alias, "t2");
  EXPECT_EQ(stmt.group_by.size(), 1u);
  EXPECT_EQ(stmt.group_by[0]->qualifier, "t1");
}

TEST(ParserTest, AggregateCalls) {
  auto r = ParseSelect(
      "SELECT COUNT(*) c, SUM(x) s, MIN(x) mn, MAX(x) mx, AVG(x) a FROM t "
      "GROUP BY y");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()->items.size(), 5u);
  EXPECT_EQ(r.value()->items[0].expr->op, "COUNT");
  EXPECT_TRUE(r.value()->items[0].expr->children.empty());
  EXPECT_EQ(r.value()->items[1].expr->op, "SUM");
}

TEST(ParserTest, SumStarRejected) {
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, AndOrPrecedence) {
  auto r = ParseSelect("SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(r.ok());
  // OR at the top, AND below.
  EXPECT_EQ(r.value()->where->kind, AstExprKind::kOr);
  EXPECT_EQ(r.value()->where->children[0]->kind, AstExprKind::kAnd);
}

TEST(ParserTest, NotAndParens) {
  auto r = ParseSelect("SELECT a FROM t WHERE NOT (a = 1 OR b = 2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()->where->kind, AstExprKind::kNot);
  EXPECT_EQ(r.value()->where->children[0]->kind, AstExprKind::kOr);
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM (SELECT a FROM t)").ok());
}

TEST(ParserTest, TrailingTokensRejected) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a = 1 ) x").ok());
}

TEST(ParserTest, MissingFromRejected) {
  EXPECT_FALSE(ParseSelect("SELECT a WHERE a = 1").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  auto r = ParseSelect(kFig2Sql);
  ASSERT_TRUE(r.ok());
  std::string rendered = r.value()->ToString();
  auto r2 = ParseSelect(rendered);
  ASSERT_TRUE(r2.ok()) << "re-parse of: " << rendered << "\n"
                       << r2.status().ToString();
  EXPECT_EQ(r2.value()->ToString(), rendered);
}

TEST(ParserTest, JoinWithoutInnerKeyword) {
  auto r = ParseSelect("SELECT a FROM t JOIN u ON t.x = u.x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()->joins.size(), 1u);
}

// Regression guard for the determinism lint's locale/UB findings: the
// parser used to route literals through std::atof/std::atoll, so
// "x > 1.5" parsed as 1.0 under a comma-decimal locale and overflowing
// integers were undefined behavior. std::from_chars is
// locale-independent and rejects out-of-range input, making plans (and
// thus view utilities) a pure function of the SQL text.

TEST(ParserTest, FloatLiteralParsesExactlyRegardlessOfLocale) {
  auto r = ParseSelect("SELECT a FROM t WHERE x > 1.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AstExpr& cmp = *r.value()->where;
  ASSERT_EQ(cmp.children.size(), 2u);
  const AstExpr& lit = *cmp.children[1];
  ASSERT_EQ(lit.kind, AstExprKind::kLiteral);
  EXPECT_TRUE(lit.literal.is_double());
  EXPECT_EQ(lit.literal.AsDouble(), 1.5);  // exact, not locale-mangled
}

TEST(ParserTest, Int64BoundaryLiteralsParse) {
  auto r =
      ParseSelect("SELECT a FROM t WHERE x = 9223372036854775807 LIMIT 42");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AstExpr& lit = *r.value()->where->children[1];
  EXPECT_EQ(lit.literal.AsInt(), INT64_MAX);
  EXPECT_EQ(r.value()->limit, 42);
}

TEST(ParserTest, OverflowingIntLiteralRejected) {
  // Pre-fix this was UB via atoll; now it is a deterministic ParseError.
  auto r = ParseSelect("SELECT a FROM t WHERE x = 99999999999999999999");
  EXPECT_FALSE(r.ok());
  auto limit = ParseSelect("SELECT a FROM t LIMIT 99999999999999999999");
  EXPECT_FALSE(limit.ok());
}

}  // namespace
}  // namespace autoview
