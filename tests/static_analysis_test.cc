// Runtime counterpart of the static-analysis tier: hammers the
// annotated invariants (AV_GUARDED_BY state in util/failpoint,
// util/metrics' relaxed counters, core/metadata's serialized file I/O,
// costmodel/fallback's degraded flag) from many threads and asserts the
// exact totals the annotations promise. Run it under
// `scripts/run_sanitizer_suites.sh tsan` to pair the compile-time
// analysis with a dynamic race check over the same state.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/metadata.h"
#include "costmodel/fallback.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/rewriter.h"
#include "engine/view_store.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace autoview {
namespace {

/// Minimal always-finite estimator so the FallbackEstimator race test
/// exercises only the wrapper's own synchronization.
class StubEstimator : public CostEstimator {
 public:
  Status Train(const std::vector<CostSample>&) override {
    return Status::OK();
  }
  double Estimate(const CostSample&) const override { return 1.0; }
  std::string name() const override { return "stub"; }
};

constexpr int kThreads = 8;
constexpr int kItersPerThread = 5000;

/// Runs `fn(thread_index)` on kThreads raw std::threads (not the shared
/// pool: the point is genuinely concurrent entry, and nested pool use
/// would inline).
void Hammer(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& th : threads) th.join();
}

TEST(StaticAnalysisRuntime, RobustnessCountersExactUnderContention) {
  RobustnessCounters counters;
  Hammer([&counters](int) {
    for (int i = 0; i < kItersPerThread; ++i) {
      counters.RecordFallback();
      if (i % 2 == 0) counters.RecordFaultInjected();
      if (i % 5 == 0) counters.RecordTimeout();
    }
  });
  const auto snap = counters.Read();
  EXPECT_EQ(snap.estimator_fallbacks,
            uint64_t{kThreads} * kItersPerThread);
  EXPECT_EQ(snap.faults_injected, uint64_t{kThreads} * (kItersPerThread / 2));
  EXPECT_EQ(snap.selection_timeouts,
            uint64_t{kThreads} * (kItersPerThread / 5));
}

TEST(StaticAnalysisRuntime, GlobalRobustnessSharedInstance) {
  GlobalRobustness().Reset();
  Hammer([](int) {
    for (int i = 0; i < kItersPerThread; ++i) {
      GlobalRobustness().RecordTimeout();
    }
  });
  EXPECT_EQ(GlobalRobustness().Read().selection_timeouts,
            uint64_t{kThreads} * kItersPerThread);
  GlobalRobustness().Reset();
}

TEST(StaticAnalysisRuntime, PoolCountersMaxDepthIsTrueMax) {
  PoolCounters counters;
  // Every thread reports a distinct interleaved sequence of depths; the
  // CAS-max loop must land on the global maximum exactly.
  Hammer([&counters](int t) {
    for (int i = 0; i < kItersPerThread; ++i) {
      counters.RecordQueueDepth(static_cast<uint64_t>(t * kItersPerThread + i));
      counters.RecordTask(1);
    }
  });
  const auto snap = counters.Read();
  EXPECT_EQ(snap.max_queue_depth,
            uint64_t{kThreads} * kItersPerThread - 1);
  EXPECT_EQ(snap.tasks_run, uint64_t{kThreads} * kItersPerThread);
  EXPECT_EQ(snap.busy_nanos, uint64_t{kThreads} * kItersPerThread);
}

TEST(StaticAnalysisRuntime, FailpointRegistryCountsEveryFire) {
  auto& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Configure("hammer.site=error").ok());
  GlobalRobustness().Reset();
  std::atomic<uint64_t> fired{0};
  Hammer([&fp, &fired](int) {
    for (int i = 0; i < kItersPerThread; ++i) {
      if (fp.Evaluate("hammer.site") == FailAction::kError) {
        fired.fetch_add(1, std::memory_order_relaxed);
      }
      // Unknown sites must stay silent even while the armed one fires.
      ASSERT_EQ(fp.Evaluate("hammer.other"), FailAction::kNone);
    }
  });
  const uint64_t expected = uint64_t{kThreads} * kItersPerThread;
  EXPECT_EQ(fired.load(), expected);  // probability 1.0: always fires
  EXPECT_EQ(fp.hits("hammer.site"), expected);
  EXPECT_EQ(fp.total_hits(), expected);
  EXPECT_EQ(GlobalRobustness().Read().faults_injected, expected);
  fp.Clear();
  GlobalRobustness().Reset();
}

TEST(StaticAnalysisRuntime, FailpointReconfigureRacesEvaluateSafely) {
  auto& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Configure("flip.site=nan:0.5").ok());
  std::atomic<bool> stop{false};
  // Half the threads evaluate while the other half re-configure; the
  // registry mutex must keep every observation either kNone or kNan
  // (never a torn site entry) and the process alive.
  Hammer([&fp, &stop](int t) {
    for (int i = 0; i < kItersPerThread && !stop.load(); ++i) {
      if (t % 2 == 0) {
        const FailAction a = fp.Evaluate("flip.site");
        if (a != FailAction::kNone && a != FailAction::kNan) {
          stop.store(true);
          FAIL() << "torn failpoint action observed";
        }
      } else {
        ASSERT_TRUE(fp.Configure("flip.site=nan:0.5").ok());
      }
    }
  });
  EXPECT_FALSE(stop.load());
  fp.Clear();
  GlobalRobustness().Reset();
}

TEST(StaticAnalysisRuntime, MetadataAppendsNeverInterleave) {
  const std::string path =
      ::testing::TempDir() + "/static_analysis_metadata.tsv";
  std::remove(path.c_str());
  MetadataStore store(path);
  constexpr int kAppendsPerThread = 200;
  // Every thread appends records tagged with its own id; the io mutex
  // must keep each record's bytes contiguous so Load() parses all of
  // them back (an interleaved write shows up as a field-count or
  // numeric ParseError).
  Hammer([&store](int t) {
    for (int i = 0; i < kAppendsPerThread; ++i) {
      MetadataRecord r;
      r.query_sql = "SELECT q" + std::to_string(t) + "_" + std::to_string(i);
      r.view_sql = "SELECT v" + std::to_string(t);
      r.tables = "t" + std::to_string(t);
      r.rewritten_cost = t + i * 1e-3;
      r.query_cost = t;
      r.subquery_cost = i;
      ASSERT_TRUE(store.Append({r}).ok());
    }
  });
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(),
            static_cast<size_t>(kThreads) * kAppendsPerThread);
  std::remove(path.c_str());
}

TEST(StaticAnalysisRuntime, FallbackDegradeRacesEstimateSafely) {
  StubEstimator primary;
  StubEstimator fallback;
  FallbackEstimator guarded(&primary, &fallback);
  // Each MarkDegraded logs a warning; 2000 flips would swamp the test
  // output, so raise the threshold for the duration of the hammer.
  const LogLevel saved_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  std::atomic<bool> done{false};
  std::thread flipper([&guarded, &done] {
    for (int i = 0; i < 2000; ++i) {
      guarded.MarkDegraded("hammer reason " + std::to_string(i));
    }
    done.store(true);
  });
  // Readers race the flipper: every degraded observation must come with
  // a non-empty reason (MarkDegraded publishes the reason before the
  // flag), and Estimate must never crash or return garbage mid-flip.
  Hammer([&guarded, &done](int) {
    while (!done.load(std::memory_order_relaxed)) {
      const double v = guarded.Estimate(CostSample{});
      ASSERT_TRUE(std::isfinite(v));
      if (guarded.degraded()) {
        ASSERT_FALSE(guarded.degraded_reason().empty());
      }
    }
  });
  flipper.join();
  SetLogLevel(saved_level);
  EXPECT_TRUE(guarded.degraded());
}

TEST(StaticAnalysisRuntime, ViewStoreEvictionRecoveryHammer) {
  // The budgeted store's full concurrent surface at once: materialize
  // (sync + async), utility-per-byte eviction, pin/serve/release,
  // drop, and rewrite-with-fallback — all racing on one store — then a
  // crash-recovery pass over the WAL the melee produced.
  Database db;
  std::vector<Row> rows;
  for (int64_t k = 0; k < 8; ++k) {
    for (int64_t n = 0; n < (k + 1) * 2; ++n) {
      rows.push_back({Value(k), Value("h" + std::to_string(k * 100 + n))});
    }
  }
  ASSERT_TRUE(db.AddTable(TableSchema("ht", {{"k", ColumnType::kInt64},
                                             {"v", ColumnType::kString}}),
                          std::move(rows))
                  .ok());
  ASSERT_TRUE(db.ComputeAllStats().ok());

  // Plans are built before the melee: planning is single-threaded by
  // contract; only execution/DDL may race.
  PlanBuilder builder(&db.catalog());
  std::vector<PlanNodePtr> plans;
  for (int k = 0; k < 8; ++k) {
    auto plan = builder.BuildFromSql("SELECT k, v FROM ht WHERE k = " +
                                     std::to_string(k));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans.push_back(plan.value());
  }

  const std::string wal =
      ::testing::TempDir() + "/static_analysis_view_store.wal";
  std::remove(wal.c_str());
  Executor exec(&db);
  ThreadPool pool(4);
  ViewStoreOptions options;
  options.budget_bytes = 2048;  // tight: forces continual eviction
  options.wal_path = wal;
  options.pool = &pool;
  MaterializedViewStore store(&db, options);
  Rewriter rewriter(&db.catalog());

  constexpr int kHammerIters = 200;
  std::atomic<uint64_t> served{0};
  Hammer([&](int t) {
    for (int i = 0; i < kHammerIters; ++i) {
      const size_t j = static_cast<size_t>(t + i) % plans.size();
      switch ((t + i) % 4) {
        case 0: {
          MaterializeOptions mopts;
          mopts.utility = static_cast<double>((t * 31 + i) % 7) + 0.5;
          const auto r = store.Materialize(plans[j], exec, mopts);
          if (!r.ok()) {
            ASSERT_TRUE(r.status().code() == StatusCode::kAlreadyExists ||
                        r.status().code() == StatusCode::kResourceExhausted)
                << r.status().ToString();
          }
          break;
        }
        case 1: {
          // Pin, serve every pinned view through the rewriter (a
          // concurrently evicted view must degrade to the base plan,
          // never fail), release.
          ViewSetSnapshot snapshot = store.PinLive();
          for (const MaterializedView* view : snapshot.views()) {
            bool changed = false;
            auto rewritten = rewriter.Rewrite(plans[j], *view, &changed);
            ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
            auto result = exec.Execute(*rewritten.value());
            ASSERT_TRUE(result.ok()) << result.status().ToString();
            served.fetch_add(1, std::memory_order_relaxed);
          }
          snapshot.Release();
          break;
        }
        case 2: {
          const MaterializedView* view =
              store.FindByKey(CanonicalKey(*plans[j]));
          if (view != nullptr) {
            const Status s = store.Drop(view->id);
            ASSERT_TRUE(s.ok() || s.code() == StatusCode::kNotFound)
                << s.ToString();
          }
          break;
        }
        default: {
          // Fire-and-forget async build; WaitIdle() below is the sync.
          store.MaterializeAsync(plans[j], exec);
          break;
        }
      }
      ASSERT_LE(store.bytes_used(), options.budget_bytes);
    }
  });
  store.WaitIdle();
  EXPECT_GT(served.load(), 0u);
  EXPECT_LE(store.bytes_used(), options.budget_bytes);

  // Quiescent consistency: with every pin released, no doomed entries
  // linger — the live set accounts for every budgeted byte, and every
  // live view's backing table is still registered.
  {
    ViewSetSnapshot snapshot = store.PinLive();
    uint64_t live_bytes = 0;
    for (const MaterializedView* view : snapshot.views()) {
      EXPECT_TRUE(db.HasTable(view->table_name)) << view->table_name;
      live_bytes += view->byte_size;
    }
    EXPECT_EQ(live_bytes, store.bytes_used());
    snapshot.Release();
  }

  // Crash-recovery over the WAL the hammer wrote: the committed state
  // must rebuild cleanly into a fresh database.
  Database db2;
  std::vector<Row> rows2;
  for (int64_t k = 0; k < 8; ++k) {
    for (int64_t n = 0; n < (k + 1) * 2; ++n) {
      rows2.push_back({Value(k), Value("h" + std::to_string(k * 100 + n))});
    }
  }
  ASSERT_TRUE(db2.AddTable(TableSchema("ht", {{"k", ColumnType::kInt64},
                                              {"v", ColumnType::kString}}),
                           std::move(rows2))
                  .ok());
  ASSERT_TRUE(db2.ComputeAllStats().ok());
  PlanBuilder builder2(&db2.catalog());
  std::vector<PlanNodePtr> plans2;
  for (int k = 0; k < 8; ++k) {
    plans2.push_back(builder2
                         .BuildFromSql("SELECT k, v FROM ht WHERE k = " +
                                       std::to_string(k))
                         .value());
  }
  Executor exec2(&db2);
  ViewStoreOptions recover_options;
  recover_options.wal_path = wal;
  MaterializedViewStore recovered(&db2, recover_options);
  auto report = recovered.Recover(
      exec2,
      [&plans2](const std::string& key) -> PlanNodePtr {
        for (const PlanNodePtr& plan : plans2) {
          if (CanonicalKey(*plan) == key) return plan;
        }
        return nullptr;
      },
      /*background=*/false);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().failed, 0u);
  EXPECT_EQ(recovered.size(), report.value().committed_views);
  {
    ViewSetSnapshot snapshot = recovered.PinLive();
    for (const MaterializedView* view : snapshot.views()) {
      EXPECT_TRUE(db2.HasTable(view->table_name));
    }
    snapshot.Release();
  }
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace autoview
