#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "engine/database.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "subquery/clusterer.h"
#include "subquery/extractor.h"
#include "subquery/verify.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace autoview {
namespace {

class SubqueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddTable(TableSchema(
                        "user_memo", {{"user_id", ColumnType::kInt64},
                                      {"memo", ColumnType::kString},
                                      {"dt", ColumnType::kString},
                                      {"memo_type", ColumnType::kString}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable(TableSchema(
                        "user_action", {{"user_id", ColumnType::kInt64},
                                        {"action", ColumnType::kString},
                                        {"type", ColumnType::kInt64},
                                        {"dt", ColumnType::kString}}))
                    .ok());
  }

  PlanNodePtr MustBuild(const std::string& sql) {
    PlanBuilder builder(&catalog_);
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }

  Catalog catalog_;
};

constexpr const char* kFig2Sql =
    "select t1.user_id, count(*) as cnt from ("
    "select user_id, memo from user_memo "
    "where dt = '1010' and memo_type = 'pen') t1 "
    "inner join (select user_id, action from user_action "
    "where type = 1 and dt = '1010') t2 "
    "on t1.user_id = t2.user_id group by t1.user_id";

TEST_F(SubqueryTest, ExtractsFig2Subqueries) {
  auto q = MustBuild(kFig2Sql);
  SubqueryExtractor extractor;
  auto subs = extractor.Extract(q);
  // s3 (Join), s1 (left Project), s2 (right Project) — pre-order.
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0]->op(), PlanOp::kJoin);
  EXPECT_EQ(subs[1]->op(), PlanOp::kProject);
  EXPECT_EQ(subs[2]->op(), PlanOp::kProject);
}

TEST_F(SubqueryTest, IncludeRootOption) {
  auto q = MustBuild(kFig2Sql);
  ExtractorOptions opts;
  opts.include_root = true;
  SubqueryExtractor extractor(opts);
  auto subs = extractor.Extract(q);
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0]->op(), PlanOp::kAggregate);
}

TEST_F(SubqueryTest, MinOperatorsFilters) {
  auto q = MustBuild("SELECT user_id AS u FROM user_memo");
  ExtractorOptions opts;
  opts.include_root = true;
  opts.min_operators = 3;
  EXPECT_TRUE(SubqueryExtractor(opts).Extract(q).empty());
  opts.min_operators = 2;
  EXPECT_EQ(SubqueryExtractor(opts).Extract(q).size(), 1u);
}

TEST_F(SubqueryTest, ClusterEquivalentSubqueriesAcrossQueries) {
  // Two queries sharing the filtered user_action subquery; the second
  // spells the conjunction in the opposite order.
  auto q1 = MustBuild(kFig2Sql);
  auto q2 = MustBuild(
      "select t2.user_id, count(*) as n from ("
      "select user_id, action from user_action "
      "where dt = '1010' and type = 1) t2 "
      "inner join (select user_id, memo from user_memo "
      "where memo_type = 'book') t3 "
      "on t2.user_id = t3.user_id group by t2.user_id");
  ASSERT_TRUE(q1 && q2);

  SubqueryClusterer clusterer;
  auto analysis = clusterer.Analyze({q1, q2});
  EXPECT_EQ(analysis.num_queries, 2u);
  EXPECT_EQ(analysis.num_subqueries, 6u);
  // Exactly one cluster has two occurrences (the shared s2).
  size_t shared = 0;
  for (const auto& cluster : analysis.clusters) {
    if (cluster.num_occurrences() == 2) {
      ++shared;
      EXPECT_EQ(cluster.query_indices.size(), 2u);
    }
  }
  EXPECT_EQ(shared, 1u);
  EXPECT_EQ(analysis.num_equivalent_pairs, 1u);
  // That cluster is the only candidate (min_sharing = 2).
  ASSERT_EQ(analysis.candidates.size(), 1u);
  // Both queries are associated.
  EXPECT_EQ(analysis.associated_queries.size(), 2u);
}

TEST_F(SubqueryTest, OverlapIsContainment) {
  auto q = MustBuild(kFig2Sql);
  auto s3 = q->child(0);
  auto s1 = s3->child(0);
  auto s2 = s3->child(1);
  EXPECT_TRUE(CanonicalPlansOverlap(*s3, *s1));
  EXPECT_TRUE(CanonicalPlansOverlap(*s1, *s3));
  EXPECT_FALSE(CanonicalPlansOverlap(*s1, *s2));
}

TEST_F(SubqueryTest, OverlapPairsInAnalysis) {
  // Three queries: q1 contains s1,s2,s3; q2 shares s3 (the join); q3
  // shares s1. Candidates: s3 (2 queries), s1 (2 queries); they overlap.
  auto q1 = MustBuild(kFig2Sql);
  auto q2 = MustBuild(
      "select t1.memo, count(*) as c from ("
      "select user_id, memo from user_memo "
      "where dt = '1010' and memo_type = 'pen') t1 "
      "inner join (select user_id, action from user_action "
      "where type = 1 and dt = '1010') t2 "
      "on t1.user_id = t2.user_id group by t1.memo");
  auto q3 = MustBuild(
      "select t1.user_id from ("
      "select user_id, memo from user_memo "
      "where dt = '1010' and memo_type = 'pen') t1 "
      "inner join user_action a on t1.user_id = a.user_id");
  ASSERT_TRUE(q1 && q2 && q3);
  SubqueryClusterer clusterer;
  auto analysis = clusterer.Analyze({q1, q2, q3});
  // Candidates: join-cluster (q1, q2) and s1-cluster (q1, q2, q3); also
  // s2 appears in q1 and q2.
  EXPECT_GE(analysis.candidates.size(), 2u);
  EXPECT_GT(analysis.num_overlapping_pairs(), 0u);
}

TEST_F(SubqueryTest, CandidatePicksCheapestMember) {
  auto q1 = MustBuild(kFig2Sql);
  auto q2 = MustBuild(kFig2Sql);
  ASSERT_TRUE(q1 && q2);
  // Cost oracle that prefers the second query's plans.
  int calls = 0;
  SubqueryClusterer::Options opts;
  SubqueryClusterer clusterer(opts, [&](const PlanNode&) {
    return static_cast<double>(100 - (calls++));
  });
  auto analysis = clusterer.Analyze({q1, q2});
  for (const auto& cluster : analysis.clusters) {
    ASSERT_NE(cluster.candidate, nullptr);
  }
  EXPECT_GT(calls, 0);
}

TEST(VerifyTest, ExecutionVerificationAgreesWithCanonicalizer) {
  Database db;
  std::vector<Row> rows;
  for (int i = 0; i < 120; ++i) {
    rows.push_back({Value(int64_t{i % 12}), Value(int64_t{i % 7}),
                    Value(i % 2 == 0 ? "x" : "y")});
  }
  ASSERT_TRUE(db.AddTable(TableSchema("t", {{"a", ColumnType::kInt64},
                                            {"b", ColumnType::kInt64},
                                            {"tag", ColumnType::kString}}),
                          std::move(rows))
                  .ok());
  ASSERT_TRUE(db.ComputeAllStats().ok());
  PlanBuilder builder(&db.catalog());
  auto build = [&](const std::string& sql) {
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << sql;
    return r.value();
  };

  // Conjunct order flipped: canonically equivalent, verified equal.
  auto p1 = build("SELECT a, b FROM t WHERE a = 3 AND b < 5");
  auto p2 = build("SELECT a, b FROM t WHERE b < 5 AND a = 3");
  auto same = VerifyEquivalenceByExecution(db, *p1, *p2);
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_TRUE(same.value());

  // Column order flipped: matched by name, still equal.
  auto p3 = build("SELECT b, a FROM t WHERE a = 3 AND b < 5");
  auto by_name = VerifyEquivalenceByExecution(db, *p1, *p3);
  ASSERT_TRUE(by_name.ok());
  EXPECT_TRUE(by_name.value());

  // Different literal: definite counterexample.
  auto p4 = build("SELECT a, b FROM t WHERE a = 4 AND b < 5");
  auto diff = VerifyEquivalenceByExecution(db, *p1, *p4);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff.value());

  // Mismatched column sets cannot be compared.
  auto p5 = build("SELECT a, tag FROM t");
  EXPECT_FALSE(VerifyEquivalenceByExecution(db, *p1, *p5).ok());
}

TEST_F(SubqueryTest, EmptyWorkload) {
  SubqueryClusterer clusterer;
  auto analysis = clusterer.Analyze({});
  EXPECT_EQ(analysis.num_queries, 0u);
  EXPECT_EQ(analysis.num_subqueries, 0u);
  EXPECT_TRUE(analysis.candidates.empty());
}

// ---------------------------------------------------------------------
// Memory-bounded clustering: the bucketed overlap prefilter and the
// streaming two-pass analysis must be *bit-identical* to the historical
// all-pairs / batch paths — the contract DESIGN.md §10 pins.

std::vector<PlanNodePtr> BuildWorkloadPlans(const GeneratedWorkload& w) {
  std::vector<PlanNodePtr> plans;
  plans.reserve(w.sql.size());
  PlanBuilder builder(&w.db->catalog());
  for (const auto& sql : w.sql) {
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    plans.push_back(r.ok() ? r.value() : nullptr);
  }
  return plans;
}

/// Everything except per-occurrence plans must agree; candidate plans
/// are compared by canonical key (the streaming path re-extracts its
/// anchor occurrence, so pointer identity is not expected).
void ExpectAnalysesEquivalent(const WorkloadAnalysis& a,
                              const WorkloadAnalysis& b) {
  EXPECT_EQ(a.num_queries, b.num_queries);
  EXPECT_EQ(a.num_subqueries, b.num_subqueries);
  EXPECT_EQ(a.num_equivalent_pairs, b.num_equivalent_pairs);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].canonical_key, b.clusters[c].canonical_key);
    EXPECT_EQ(a.clusters[c].num_occurrences(),
              b.clusters[c].num_occurrences());
    EXPECT_EQ(a.clusters[c].query_indices, b.clusters[c].query_indices);
    ASSERT_NE(a.clusters[c].candidate, nullptr);
    ASSERT_NE(b.clusters[c].candidate, nullptr);
    EXPECT_EQ(CanonicalKey(*a.clusters[c].candidate),
              CanonicalKey(*b.clusters[c].candidate));
  }
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.associated_queries, b.associated_queries);
  EXPECT_EQ(a.overlapping, b.overlapping);
}

TEST(ClustererScaleTest, BucketedOverlapMatchesAllPairs) {
  for (const uint64_t seed : {11u, 12u}) {
    CloudWorkloadSpec spec = Wk1Spec(0.6);
    spec.seed = seed;
    const GeneratedWorkload workload = GenerateCloudWorkload(spec);
    const auto plans = BuildWorkloadPlans(workload);

    SubqueryClusterer::Options bucketed;
    bucketed.overlap = SubqueryClusterer::OverlapAlgorithm::kBucketed;
    SubqueryClusterer::Options all_pairs;
    all_pairs.overlap = SubqueryClusterer::OverlapAlgorithm::kAllPairs;

    const auto a = SubqueryClusterer(bucketed).Analyze(plans);
    const auto b = SubqueryClusterer(all_pairs).Analyze(plans);
    EXPECT_GT(a.num_overlapping_pairs(), 0u);
    EXPECT_EQ(a.overlapping, b.overlapping);
    ExpectAnalysesEquivalent(a, b);
  }
}

TEST(ClustererScaleTest, StreamingMatchesBatchAcrossChunksAndThreads) {
  const GeneratedWorkload workload = GenerateCloudWorkload(Wk2Spec(0.5));
  const auto plans = BuildWorkloadPlans(workload);
  const auto query_fn = [&plans](size_t qi) { return plans[qi]; };

  const WorkloadAnalysis batch = SubqueryClusterer().Analyze(plans);

  for (const size_t chunk : {1u, 7u, 1024u}) {
    for (const size_t threads : {1u, 4u}) {
      ThreadPool pool(threads);
      SubqueryClusterer::Options opts;
      opts.extract_chunk = chunk;
      opts.pool = &pool;
      const WorkloadAnalysis streaming =
          SubqueryClusterer(opts).AnalyzeStreaming(plans.size(), query_fn);
      ExpectAnalysesEquivalent(batch, streaming);
      // The streaming path never retains member plans.
      for (const auto& cluster : streaming.clusters) {
        EXPECT_TRUE(cluster.occurrences.empty());
      }
    }
  }
}

TEST(ClustererScaleTest, BatchChunkSizeDoesNotChangeResults) {
  const GeneratedWorkload workload = GenerateCloudWorkload(Wk1Spec(0.4));
  const auto plans = BuildWorkloadPlans(workload);
  const WorkloadAnalysis base = SubqueryClusterer().Analyze(plans);
  for (const size_t chunk : {1u, 3u, 50u}) {
    SubqueryClusterer::Options opts;
    opts.extract_chunk = chunk;
    const WorkloadAnalysis chunked = SubqueryClusterer(opts).Analyze(plans);
    ExpectAnalysesEquivalent(base, chunked);
  }
}

}  // namespace
}  // namespace autoview
