#include <gtest/gtest.h>

#include "engine/table.h"
#include "plan/builder.h"

namespace autoview {
namespace {

TEST(TableTest, ByteSizeCountsCells) {
  Table t;
  t.columns = {{"a", ColumnType::kInt64}, {"s", ColumnType::kString}};
  t.rows = {{Value(int64_t{1}), Value("abc")},
            {Value(int64_t{2}), Value("de")}};
  // ints: 8 each; strings: size + sizeof(size_t).
  EXPECT_EQ(t.ByteSize(),
            2 * 8 + (3 + sizeof(size_t)) + (2 + sizeof(size_t)));
}

TEST(TableTest, ToStringTruncates) {
  Table t;
  t.columns = {{"a", ColumnType::kInt64}};
  for (int i = 0; i < 30; ++i) t.rows.push_back({Value(int64_t{i})});
  std::string s = t.ToString(5);
  EXPECT_NE(s.find("a:Int"), std::string::npos);
  EXPECT_NE(s.find("(30 rows total)"), std::string::npos);
}

TEST(TableTest, EqualityRequiresSameColumns) {
  Table a, b;
  a.columns = {{"x", ColumnType::kInt64}};
  b.columns = {{"y", ColumnType::kInt64}};
  EXPECT_FALSE(TablesEqualUnordered(a, b));
  b.columns = a.columns;
  EXPECT_TRUE(TablesEqualUnordered(a, b));
}

class PrintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddTable(TableSchema("t", {{"a", ColumnType::kInt64},
                                                {"b", ColumnType::kString}}))
                    .ok());
  }
  PlanNodePtr Build(const std::string& sql) {
    PlanBuilder builder(&catalog_);
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << sql;
    return r.value();
  }
  Catalog catalog_;
};

TEST_F(PrintTest, OperatorStringsAreStable) {
  EXPECT_EQ(Build("SELECT * FROM t")->OperatorString(),
            "TableScan(table=[[t]])");
  EXPECT_EQ(Build("SELECT * FROM t WHERE a = 1")->OperatorString(),
            "Filter(condition=[EQ(a, 1)])");
  EXPECT_EQ(Build("SELECT a AS x FROM t")->OperatorString(),
            "Project(x=[a])");
  EXPECT_EQ(Build("SELECT a, COUNT(*) AS c FROM t GROUP BY a")
                ->OperatorString(),
            "Aggregate(group=[{a}], c=[COUNT()])");
  EXPECT_EQ(Build("SELECT a FROM t ORDER BY a DESC")->OperatorString(),
            "Sort(keys=[a DESC])");
  EXPECT_EQ(Build("SELECT a FROM t LIMIT 4")->OperatorString(),
            "Limit(n=[4])");
  EXPECT_EQ(Build("SELECT DISTINCT a FROM t")->OperatorString(),
            "Distinct()");
}

TEST_F(PrintTest, TreeIndentation) {
  std::string s = Build("SELECT a FROM t WHERE a > 2")->ToString();
  // Project at depth 0, Filter at 2 spaces, Scan at 4.
  EXPECT_NE(s.find("Project(a=[a])\n  Filter"), std::string::npos);
  EXPECT_NE(s.find("  Filter(condition=[GT(a, 2)])\n    TableScan"),
            std::string::npos);
}

TEST_F(PrintTest, NumOperatorsAndHeight) {
  auto plan = Build("SELECT a FROM t WHERE a > 2 ORDER BY a LIMIT 3");
  // Limit, Sort, Project, Filter, Scan.
  EXPECT_EQ(plan->NumOperators(), 5u);
  EXPECT_EQ(plan->Height(), 5u);
}

}  // namespace
}  // namespace autoview
