// ThreadPool unit tests: lifecycle, futures, exception propagation,
// ParallelFor index coverage, nested submission, and counters.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace autoview {
namespace {

TEST(ThreadPoolTest, ConstructAndShutdownIdle) {
  // Pools of several sizes must come up and tear down without any work.
  for (size_t n : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
  }
}

TEST(ThreadPoolTest, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor must wait for all 64
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(3);
  auto f1 = pool.Submit([] { return 40 + 2; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool must stay usable after a task threw.
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](size_t i) {
                                  if (i == 37) throw std::logic_error("bad");
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, n, [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, ParallelForRespectsBeginOffsetAndGrain) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(50);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(10, 50, [&hits](size_t i) { hits[i].fetch_add(1); },
                   /*grain=*/8);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(hits[i].load(), i >= 10 ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  // A task that blocks on work it spawned must not starve: nested
  // Submit runs inline on the worker, so this completes even with one
  // worker thread.
  ThreadPool pool(1);
  auto outer = pool.Submit([&pool] {
    auto inner = pool.Submit([&pool] {
      return pool.Submit([] { return 1; }).get() + 1;
    });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 3);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, [&](size_t) {
    pool.ParallelFor(0, 8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, CountersObserveWork) {
  ThreadPool pool(2);
  pool.ParallelFor(0, 256, [](size_t) {});
  const PoolCounters::Snapshot snap = pool.counters().Read();
  EXPECT_GT(snap.tasks_run, 0u);
  EXPECT_GT(snap.max_queue_depth, 0u);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride) {
  // setenv/getenv in a single-threaded test body is safe here.
  ASSERT_EQ(setenv("AUTOVIEW_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultThreadCount(), 3u);
  ASSERT_EQ(setenv("AUTOVIEW_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);  // falls back to hardware
  ASSERT_EQ(unsetenv("AUTOVIEW_THREADS"), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace autoview
