#include <gtest/gtest.h>

#include "costmodel/traditional.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "plan/builder.h"
#include "util/random.h"

namespace autoview {
namespace {

/// Uniform, independent data: the traditional estimator's assumptions
/// hold, so its cardinalities should be close to the truth. (The
/// workload generators deliberately *violate* these assumptions; this
/// suite pins down that the estimator itself is implemented correctly.)
class TraditionalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(3);
    std::vector<Row> rows;
    for (int i = 0; i < 1000; ++i) {
      rows.push_back({Value(rng.UniformInt(0, 99)),       // key: uniform
                      Value(rng.UniformInt(0, 9)),        // cat: uniform
                      Value("s" + std::to_string(rng.UniformInt(0, 4)))});
    }
    ASSERT_TRUE(db_.AddTable(TableSchema("facts",
                                         {{"key", ColumnType::kInt64},
                                          {"cat", ColumnType::kInt64},
                                          {"tag", ColumnType::kString}}),
                             std::move(rows))
                    .ok());
    std::vector<Row> dim_rows;
    for (int i = 0; i < 100; ++i) {
      dim_rows.push_back({Value(int64_t{i}), Value(rng.UniformInt(0, 4))});
    }
    ASSERT_TRUE(db_.AddTable(TableSchema("dims",
                                         {{"key", ColumnType::kInt64},
                                          {"grp", ColumnType::kInt64}}),
                             std::move(dim_rows))
                    .ok());
    ASSERT_TRUE(db_.ComputeAllStats().ok());
  }

  PlanNodePtr MustBuild(const std::string& sql) {
    PlanBuilder builder(&db_.catalog());
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.value();
  }

  double ActualRows(const PlanNodePtr& plan) {
    Executor exec(&db_);
    auto result = exec.Execute(*plan);
    EXPECT_TRUE(result.ok());
    return static_cast<double>(result.value().table.num_rows());
  }

  Database db_;
};

TEST_F(TraditionalTest, ScanCardinalityExact) {
  CardinalityEstimator card(&db_.catalog());
  auto plan = MustBuild("SELECT * FROM facts");
  EXPECT_EQ(card.EstimateRows(*plan), 1000.0);
}

TEST_F(TraditionalTest, EqualityFilterWithinFactorTwo) {
  CardinalityEstimator card(&db_.catalog());
  auto plan = MustBuild("SELECT * FROM facts WHERE cat = 3");
  const double est = card.EstimateRows(*plan);
  const double actual = ActualRows(plan);
  EXPECT_GT(est, actual / 2);
  EXPECT_LT(est, actual * 2);
}

TEST_F(TraditionalTest, StringEqualityUsesDistinctCount) {
  CardinalityEstimator card(&db_.catalog());
  auto plan = MustBuild("SELECT * FROM facts WHERE tag = 's1'");
  // 5 distinct tags -> ~200 rows.
  EXPECT_NEAR(card.EstimateRows(*plan), 200.0, 60.0);
}

TEST_F(TraditionalTest, RangeFilterTracksHistogram) {
  CardinalityEstimator card(&db_.catalog());
  auto plan = MustBuild("SELECT * FROM facts WHERE key < 25");
  const double actual = ActualRows(plan);
  EXPECT_NEAR(card.EstimateRows(*plan), actual, actual * 0.35 + 20);
}

TEST_F(TraditionalTest, ConjunctionUsesIndependence) {
  CardinalityEstimator card(&db_.catalog());
  auto plan = MustBuild("SELECT * FROM facts WHERE cat = 3 AND key < 50");
  // Independent columns: est ~ 1000 * 0.1 * 0.5 = 50.
  EXPECT_NEAR(card.EstimateRows(*plan), 50.0, 30.0);
}

TEST_F(TraditionalTest, JoinCardinalityWithinFactorTwo) {
  CardinalityEstimator card(&db_.catalog());
  auto plan = MustBuild(
      "SELECT f.cat FROM facts f INNER JOIN dims d ON f.key = d.key");
  const double actual = ActualRows(plan);  // every fact matches once
  const double est = card.EstimateRows(*plan->child(0));
  EXPECT_GT(est, actual / 2);
  EXPECT_LT(est, actual * 2);
}

TEST_F(TraditionalTest, AggregateBoundedByGroups) {
  CardinalityEstimator card(&db_.catalog());
  auto plan = MustBuild("SELECT cat, COUNT(*) AS c FROM facts GROUP BY cat");
  EXPECT_NEAR(card.EstimateRows(*plan), 10.0, 1e-9);
  auto global = MustBuild("SELECT COUNT(*) AS c FROM facts");
  EXPECT_EQ(card.EstimateRows(*global), 1.0);
}

TEST_F(TraditionalTest, OrAndNotSelectivities) {
  CardinalityEstimator card(&db_.catalog());
  auto either = MustBuild("SELECT * FROM facts WHERE cat = 1 OR cat = 2");
  EXPECT_NEAR(card.EstimateRows(*either), 190.0, 60.0);
  auto negated = MustBuild("SELECT * FROM facts WHERE NOT cat = 1");
  EXPECT_NEAR(card.EstimateRows(*negated), 900.0, 80.0);
}

TEST_F(TraditionalTest, PlanCostMonotoneInPlanSize) {
  TraditionalEstimator est(&db_.catalog(), Pricing{});
  auto scan = MustBuild("SELECT * FROM facts");
  auto join = MustBuild(
      "SELECT f.cat FROM facts f INNER JOIN dims d ON f.key = d.key");
  EXPECT_GT(est.EstimatePlanCost(*join), est.EstimatePlanCost(*scan));
  EXPECT_GT(est.EstimateViewScanCost(*scan), 0.0);
}

TEST_F(TraditionalTest, EstimateOnUniformDataIsAccurate) {
  // On assumption-friendly data the Optimizer baseline should land in
  // the right ballpark of the true A(q|v).
  TraditionalEstimator est(&db_.catalog(), Pricing{});
  Executor exec(&db_);
  auto query = MustBuild(
      "SELECT j.grp, COUNT(*) AS c FROM (SELECT f.cat AS cat, d.grp AS grp "
      "FROM facts f INNER JOIN dims d ON f.key = d.key) j GROUP BY j.grp");
  auto view = query->child(0);
  CostSample sample;
  sample.query = query;
  sample.view = view;
  sample.tables = {"facts", "dims"};
  const double predicted = est.Estimate(sample);
  EXPECT_GT(predicted, 0.0);
  // Truth: execute subquery-as-view rewrite is not needed here — just
  // sanity-bound against the full query cost.
  auto full = exec.Execute(*query);
  ASSERT_TRUE(full.ok());
  const double full_cost = Pricing{}.QueryCost(full.value().cost);
  EXPECT_LT(predicted, full_cost);
}

}  // namespace
}  // namespace autoview
