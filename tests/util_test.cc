#include <gtest/gtest.h>

#include <cmath>

#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace autoview {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stat.mean(), 2.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(5);
  int lo = 0, hi = 0;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.Zipf(100, 1.5);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    if (v < 10) ++lo;
    if (v >= 90) ++hi;
  }
  EXPECT_GT(lo, hi * 5);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(5);
  int low_half = 0;
  for (int i = 0; i < 4000; ++i) low_half += rng.Zipf(100, 0.0) < 50;
  EXPECT_NEAR(low_half, 2000, 200);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(9);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(StringsTest, JoinSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "", "c"};
  EXPECT_EQ(Join(parts, ","), "a,,c");
  EXPECT_EQ(Split("a,,c", ','), parts);
}

TEST(StringsTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(FormatDouble(1.5000, 4), "1.5");
  EXPECT_EQ(FormatDouble(2.0, 2), "2");
  EXPECT_EQ(HumanCount(1500), "1.5K");
  EXPECT_EQ(HumanCount(2500000), "2.5M");
}

TEST(MetricsTest, MaeMape) {
  std::vector<double> y = {1, 2, 4};
  std::vector<double> yhat = {1, 3, 2};
  EXPECT_NEAR(MeanAbsoluteError(y, yhat), 1.0, 1e-12);
  EXPECT_NEAR(MeanAbsolutePercentError(y, yhat), (0 + 0.5 + 0.5) / 3, 1e-12);
}

TEST(MetricsTest, RmseAndPearson) {
  std::vector<double> y = {1, 2, 3, 4};
  std::vector<double> perfect = y;
  EXPECT_NEAR(RootMeanSquaredError(y, perfect), 0.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(y, perfect), 1.0, 1e-12);
  std::vector<double> inverse = {4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(y, inverse), -1.0, 1e-12);
  std::vector<double> constant = {5, 5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(y, constant), 0.0);
}

TEST(RunningStatTest, TracksMinMaxMeanVar) {
  RunningStat s;
  for (double v : {2.0, 4.0, 6.0}) s.Add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_NEAR(s.mean(), 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 8.0 / 3.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.sum(), 12.0, 1e-12);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "v"});
  tp.AddRow({"long_name", "1"});
  tp.AddRow({"x"});
  std::string out = tp.ToString();
  EXPECT_NE(out.find("| name      | v |"), std::string::npos);
  EXPECT_NE(out.find("| long_name | 1 |"), std::string::npos);
  EXPECT_NE(out.find("| x         |   |"), std::string::npos);
}

}  // namespace
}  // namespace autoview
