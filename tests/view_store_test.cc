// Budgeted, crash-safe view store: utility-per-byte eviction against a
// brute-force oracle, pin/doom lifecycle, generation hot swap, async
// materialization, and WAL recovery truncated at every record boundary
// (plus mid-record) — the recovered state must always be the committed
// prefix, bit-identical scores included.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/view_store.h"
#include "engine/view_store_log.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace autoview {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  if (f != nullptr) {
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      content.append(chunk, n);
    }
    std::fclose(f);
  }
  return content;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  ASSERT_EQ(std::fclose(f), 0);
}

class ViewStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildDb(&db_);
    Failpoints::Instance().Clear();
  }

  void TearDown() override { Failpoints::Instance().Clear(); }

  /// Loads the fixture table: k = i appears (i + 1) * 3 times, so the
  /// eight candidate views `WHERE k = i` have strictly growing sizes.
  static void BuildDb(Database* db) {
    std::vector<Row> rows;
    for (int64_t k = 0; k < 8; ++k) {
      for (int64_t n = 0; n < (k + 1) * 3; ++n) {
        rows.push_back({Value(k), Value("payload_" + std::to_string(k) +
                                        "_" + std::to_string(n))});
      }
    }
    ASSERT_TRUE(db->AddTable(TableSchema("t", {{"k", ColumnType::kInt64},
                                               {"v", ColumnType::kString}}),
                             std::move(rows))
                    .ok());
    ASSERT_TRUE(db->ComputeAllStats().ok());
  }

  static PlanNodePtr ViewPlan(const Database& db, int k) {
    PlanBuilder builder(&db.catalog());
    auto plan = builder.BuildFromSql("SELECT k, v FROM t WHERE k = " +
                                     std::to_string(k));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? plan.value() : nullptr;
  }

  /// canonical_key -> plan resolver over the eight fixture candidates.
  static std::function<PlanNodePtr(const std::string&)> Resolver(
      const Database& db) {
    std::vector<PlanNodePtr> plans;
    for (int k = 0; k < 8; ++k) plans.push_back(ViewPlan(db, k));
    return [plans](const std::string& key) -> PlanNodePtr {
      for (const PlanNodePtr& plan : plans) {
        if (CanonicalKey(*plan) == key) return plan;
      }
      return nullptr;
    };
  }

  std::string TempPath(const std::string& name) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string path = std::string(::testing::TempDir()) + "/" +
                             info->name() + "_" + name;
    std::remove(path.c_str());
    return path;
  }

  Database db_;
};

TEST_F(ViewStoreTest, WalRecordRoundTrip) {
  ViewLogRecord m;
  m.kind = ViewLogRecord::Kind::kMaterialize;
  m.id = 42;
  m.generation = 7;
  m.byte_size = 12345;
  m.utility = 0.1 + 0.2;  // not exactly representable: %.17g must hold it
  m.canonical_key = "Project(Filter(Scan t) k = 3) with spaces";
  auto line = ViewStateLog::EncodeRecord(m);
  ASSERT_TRUE(line.ok());
  ASSERT_EQ(line.value().back(), '\n');
  auto decoded = ViewStateLog::DecodeRecord(
      line.value().substr(0, line.value().size() - 1));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, m.id);
  EXPECT_EQ(decoded.value().generation, m.generation);
  EXPECT_EQ(decoded.value().byte_size, m.byte_size);
  EXPECT_EQ(decoded.value().utility, m.utility);  // bit-exact
  EXPECT_EQ(decoded.value().canonical_key, m.canonical_key);

  ViewLogRecord d;
  d.kind = ViewLogRecord::Kind::kDrop;
  d.id = 9;
  auto dline = ViewStateLog::EncodeRecord(d);
  ASSERT_TRUE(dline.ok());
  auto ddecoded = ViewStateLog::DecodeRecord(
      dline.value().substr(0, dline.value().size() - 1));
  ASSERT_TRUE(ddecoded.ok());
  EXPECT_EQ(ddecoded.value().kind, ViewLogRecord::Kind::kDrop);
  EXPECT_EQ(ddecoded.value().id, 9);

  ViewLogRecord c;
  c.kind = ViewLogRecord::Kind::kCheckpoint;
  c.generation = 3;
  c.next_id = 17;
  auto cline = ViewStateLog::EncodeRecord(c);
  ASSERT_TRUE(cline.ok());
  auto cdecoded = ViewStateLog::DecodeRecord(
      cline.value().substr(0, cline.value().size() - 1));
  ASSERT_TRUE(cdecoded.ok());
  EXPECT_EQ(cdecoded.value().generation, 3u);
  EXPECT_EQ(cdecoded.value().next_id, 17);

  // A flipped byte in the body fails the checksum.
  std::string corrupt = line.value().substr(0, line.value().size() - 1);
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_FALSE(ViewStateLog::DecodeRecord(corrupt).ok());
  // Keys with newlines would break line framing: rejected at encode.
  ViewLogRecord bad = m;
  bad.canonical_key = "multi\nline";
  EXPECT_FALSE(ViewStateLog::EncodeRecord(bad).ok());
}

TEST_F(ViewStoreTest, BudgetEvictsLowestUtilityPerByteOracle) {
  // Pass 1 (unlimited): measure each candidate's stored size.
  Executor exec(&db_);
  std::vector<uint64_t> bytes(6, 0);
  {
    MaterializedViewStore measure(&db_, ViewStoreOptions{});
    for (int k = 0; k < 6; ++k) {
      auto view = measure.Materialize(ViewPlan(db_, k), exec);
      ASSERT_TRUE(view.ok()) << view.status().ToString();
      bytes[static_cast<size_t>(k)] = view.value()->byte_size;
    }
    ASSERT_TRUE(measure.Clear().ok());
  }
  const std::vector<double> utility = {5.5, 1.25, 9.0, 0.5, 7.75, 3.0};
  uint64_t budget = 0;
  for (int k = 0; k < 6; ++k) budget += bytes[static_cast<size_t>(k)];
  budget = budget / 2;  // roughly half the candidates fit

  // Brute-force oracle: replay the same admission order, evicting the
  // lowest utility-per-byte (ties: lowest id) until each insert fits.
  struct Sim {
    int id;
    uint64_t bytes;
    double utility;
  };
  std::vector<Sim> resident;
  size_t oracle_evictions = 0;
  for (int k = 0; k < 6; ++k) {
    const uint64_t need = bytes[static_cast<size_t>(k)];
    auto used = [&resident] {
      uint64_t total = 0;
      for (const Sim& s : resident) total += s.bytes;
      return total;
    };
    while (used() + need > budget) {
      size_t victim = resident.size();
      double best = 0.0;
      for (size_t i = 0; i < resident.size(); ++i) {
        const double score =
            resident[i].utility / static_cast<double>(resident[i].bytes);
        if (victim == resident.size() || score < best) {
          victim = i;
          best = score;
        }
      }
      ASSERT_LT(victim, resident.size()) << "oracle stuck";
      resident.erase(resident.begin() + static_cast<long>(victim));
      ++oracle_evictions;
    }
    resident.push_back(Sim{k, need, utility[static_cast<size_t>(k)]});
  }

  GlobalViewStore().Reset();
  ViewStoreOptions options;
  options.budget_bytes = budget;
  MaterializedViewStore store(&db_, options);
  for (int k = 0; k < 6; ++k) {
    MaterializeOptions mopts;
    mopts.utility = utility[static_cast<size_t>(k)];
    auto view = store.Materialize(ViewPlan(db_, k), exec, mopts);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
  }
  EXPECT_LE(store.bytes_used(), budget);
  EXPECT_EQ(store.size(), resident.size());
  for (const Sim& s : resident) {
    const std::string key = CanonicalKey(*ViewPlan(db_, s.id));
    EXPECT_NE(store.FindByKey(key), nullptr) << "oracle keeps view " << s.id;
  }
  EXPECT_EQ(GlobalViewStore().Read().evictions, oracle_evictions);
}

TEST_F(ViewStoreTest, PinBlocksEvictionAndDefersDrop) {
  Executor exec(&db_);
  uint64_t ab_bytes = 0;
  {
    MaterializedViewStore measure(&db_, ViewStoreOptions{});
    for (int k = 0; k < 2; ++k) {
      auto view = measure.Materialize(ViewPlan(db_, k), exec);
      ASSERT_TRUE(view.ok());
      ab_bytes += view.value()->byte_size;
    }
    ASSERT_TRUE(measure.Clear().ok());
  }

  GlobalViewStore().Reset();
  ViewStoreOptions options;
  options.budget_bytes = ab_bytes;  // exactly A + B
  MaterializedViewStore store(&db_, options);
  auto a = store.Materialize(ViewPlan(db_, 0), exec);
  auto b = store.Materialize(ViewPlan(db_, 1), exec);
  ASSERT_TRUE(a.ok() && b.ok());

  ViewSetSnapshot pinned = store.PinLive();
  ASSERT_EQ(pinned.views().size(), 2u);

  // Every resident view is pinned: the admission must be rejected, not
  // block or evict from under the snapshot.
  auto c = store.Materialize(ViewPlan(db_, 2), exec);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(GlobalViewStore().Read().admissions_rejected, 1u);
  EXPECT_EQ(store.size(), 2u);

  // Dropping a pinned view is logical-only: invisible to lookups, but
  // the backing table survives until the last unpin.
  const std::string a_table = a.value()->table_name;
  const int64_t a_id = a.value()->id;
  ASSERT_TRUE(store.Drop(a_id).ok());
  EXPECT_EQ(store.FindById(a_id), nullptr);
  EXPECT_TRUE(db_.HasTable(a_table));
  // The pinned snapshot still serves A's descriptor and table.
  EXPECT_EQ(pinned.views()[0]->id, a_id);
  EXPECT_TRUE(db_.GetTable(a_table).ok());

  pinned.Release();
  EXPECT_FALSE(db_.HasTable(a_table));  // deferred drop completed

  // With the pin gone the budget can make room again.
  auto c2 = store.Materialize(ViewPlan(db_, 2), exec);
  EXPECT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_LE(store.bytes_used(), ab_bytes);
}

TEST_F(ViewStoreTest, GenerationHotSwapServesOldSetUntilRelease) {
  Executor exec(&db_);
  MaterializedViewStore store(&db_, ViewStoreOptions{});
  auto a = store.Materialize(ViewPlan(db_, 0), exec);
  auto b = store.Materialize(ViewPlan(db_, 1), exec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(store.current_generation(), 1u);

  ViewSetSnapshot old_set = store.PinLive();
  ASSERT_EQ(old_set.views().size(), 2u);
  EXPECT_EQ(old_set.generation(), 1u);

  // Stage generation 2: one new view, and A survives via re-tag (its
  // id and backing table are reused, never rebuilt).
  const uint64_t staged = store.BeginSwap();
  EXPECT_GT(staged, 1u);
  MaterializeOptions stage_opts;
  stage_opts.generation = staged;
  stage_opts.utility = 4.0;
  auto c = store.Materialize(ViewPlan(db_, 2), exec, stage_opts);
  ASSERT_TRUE(c.ok());
  auto a_again = store.Materialize(ViewPlan(db_, 0), exec, stage_opts);
  ASSERT_TRUE(a_again.ok());
  EXPECT_EQ(a_again.value()->id, a.value()->id);
  EXPECT_EQ(a_again.value()->generation, staged);

  const std::string b_table = b.value()->table_name;
  ASSERT_TRUE(store.CommitSwap(staged).ok());
  EXPECT_EQ(store.current_generation(), staged);

  // B is retired but pinned: the old snapshot keeps serving it.
  EXPECT_EQ(store.size(), 2u);  // A (re-tagged) + C
  EXPECT_TRUE(db_.HasTable(b_table));
  for (const MaterializedView* view : old_set.views()) {
    EXPECT_TRUE(db_.HasTable(view->table_name));
  }

  // New snapshots see exactly the committed new set.
  ViewSetSnapshot new_set = store.PinLive();
  ASSERT_EQ(new_set.views().size(), 2u);
  EXPECT_EQ(new_set.generation(), staged);
  for (const MaterializedView* view : new_set.views()) {
    EXPECT_EQ(view->generation, staged);
  }
  new_set.Release();

  old_set.Release();
  EXPECT_FALSE(db_.HasTable(b_table));  // retirement completed

  // Committing a stale generation is rejected.
  EXPECT_FALSE(store.CommitSwap(staged).ok());
}

TEST_F(ViewStoreTest, AsyncMaterializeDrainsWithWaitIdle) {
  GlobalViewStore().Reset();
  Executor exec(&db_);
  MaterializedViewStore store(&db_, ViewStoreOptions{});
  std::vector<std::future<Status>> futures;
  for (int round = 0; round < 2; ++round) {
    for (int k = 0; k < 4; ++k) {
      futures.push_back(store.MaterializeAsync(ViewPlan(db_, k), exec));
    }
  }
  store.WaitIdle();
  EXPECT_EQ(store.size(), 4u);  // duplicates collapsed
  size_t ok = 0, already = 0;
  for (auto& f : futures) {
    const Status s = f.get();
    if (s.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kAlreadyExists) << s.ToString();
      ++already;
    }
  }
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(already, 4u);
  EXPECT_GE(GlobalViewStore().Read().async_builds, 8u);
}

/// Oracle fold mirroring the documented WAL semantics: MATERIALIZE
/// upserts by id, DROP erases, CHECKPOINT advances the generation and
/// retires strictly older live views. Independent reimplementation —
/// Recover must agree with this, not with itself.
struct OracleState {
  std::map<int64_t, ViewLogRecord> live;
  uint64_t generation = 1;
};
OracleState FoldRecords(const std::vector<ViewLogRecord>& records) {
  OracleState state;
  for (const ViewLogRecord& record : records) {
    switch (record.kind) {
      case ViewLogRecord::Kind::kMaterialize:
        state.live[record.id] = record;
        break;
      case ViewLogRecord::Kind::kDrop:
        state.live.erase(record.id);
        break;
      case ViewLogRecord::Kind::kCheckpoint: {
        if (record.generation > state.generation) {
          state.generation = record.generation;
        }
        for (auto it = state.live.begin(); it != state.live.end();) {
          it = it->second.generation < state.generation
                   ? state.live.erase(it)
                   : std::next(it);
        }
        break;
      }
    }
  }
  return state;
}

TEST_F(ViewStoreTest, RecoveryAtEveryTruncationPointMatchesCommittedState) {
  const std::string wal = TempPath("history.wal");
  Executor exec(&db_);
  const std::vector<double> utility = {5.5, 1.25, 9.0, 0.5, 7.75};

  // A history exercising every record kind: materialize, drop, a
  // generation swap with a re-tagged survivor, and a post-swap install.
  {
    ViewStoreOptions options;
    options.wal_path = wal;
    MaterializedViewStore store(&db_, options);
    std::vector<int64_t> ids;
    for (int k = 0; k < 3; ++k) {
      MaterializeOptions mopts;
      mopts.utility = utility[static_cast<size_t>(k)];
      auto view = store.Materialize(ViewPlan(db_, k), exec, mopts);
      ASSERT_TRUE(view.ok()) << view.status().ToString();
      ids.push_back(view.value()->id);
    }
    ASSERT_TRUE(store.Drop(ids[1]).ok());
    const uint64_t staged = store.BeginSwap();
    MaterializeOptions stage3;
    stage3.generation = staged;
    stage3.utility = utility[3];
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 3), exec, stage3).ok());
    MaterializeOptions stage0;
    stage0.generation = staged;
    stage0.utility = utility[0];
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 0), exec, stage0).ok());
    ASSERT_TRUE(store.CommitSwap(staged).ok());
    MaterializeOptions mopts4;
    mopts4.utility = utility[4];
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 4), exec, mopts4).ok());
    ASSERT_TRUE(store.Clear().ok());  // drop tables; the WAL is the state
  }

  const std::string full = ReadFileOrDie(wal);
  ASSERT_FALSE(full.empty());

  // Crash points: after every record, and mid-record two bytes short of
  // each boundary (a torn append). Offset 0 = empty log.
  std::vector<size_t> offsets = {0};
  for (size_t pos = full.find('\n'); pos != std::string::npos;
       pos = full.find('\n', pos + 1)) {
    if (pos >= 2) offsets.push_back(pos - 1);  // torn: newline missing
    offsets.push_back(pos + 1);                // clean record boundary
  }

  for (size_t offset : offsets) {
    SCOPED_TRACE(StrFormat("truncated at byte %zu of %zu", offset,
                           full.size()));
    const std::string truncated_path = TempPath("truncated.wal");
    WriteFileOrDie(truncated_path, full.substr(0, offset));

    // The oracle folds the longest valid record prefix of the bytes.
    auto replay = ViewStateLog::Replay(truncated_path);
    ASSERT_TRUE(replay.ok());
    const OracleState oracle = FoldRecords(replay.value().records);

    Database db2;
    BuildDb(&db2);
    Executor exec2(&db2);
    ViewStoreOptions options;
    options.wal_path = truncated_path;
    MaterializedViewStore recovered(&db2, options);
    auto report = recovered.Recover(exec2, Resolver(db2), false);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report.value().committed_views, oracle.live.size());
    EXPECT_EQ(report.value().rematerialized, oracle.live.size());
    EXPECT_EQ(report.value().failed, 0u);
    EXPECT_EQ(recovered.size(), oracle.live.size());
    EXPECT_EQ(recovered.current_generation(), oracle.generation);

    for (const auto& [id, record] : oracle.live) {
      const MaterializedView* view = recovered.FindById(id);
      ASSERT_NE(view, nullptr) << "missing committed view id " << id;
      EXPECT_EQ(view->canonical_key, record.canonical_key);
      EXPECT_EQ(view->generation, record.generation);
      EXPECT_EQ(view->utility, record.utility);  // bit-exact round trip
      EXPECT_EQ(view->byte_size, record.byte_size);  // deterministic build
      // The rebuilt table is bit-identical to executing the plan fresh.
      auto table = db2.GetTable(view->table_name);
      ASSERT_TRUE(table.ok());
      auto fresh = exec2.Execute(*view->plan);
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(table.value()->ToString(), fresh.value().table.ToString());
    }

    // Recovery compacted the log: replaying it again yields exactly the
    // committed state with no torn tail.
    auto compacted = ViewStateLog::Replay(truncated_path);
    ASSERT_TRUE(compacted.ok());
    EXPECT_FALSE(compacted.value().torn_tail);
    const OracleState again = FoldRecords(compacted.value().records);
    EXPECT_EQ(again.live.size(), oracle.live.size());
    EXPECT_EQ(again.generation, oracle.generation);
  }
}

TEST_F(ViewStoreTest, TornTailIsDetectedAndDiscarded) {
  const std::string wal = TempPath("torn.wal");
  Executor exec(&db_);
  {
    ViewStoreOptions options;
    options.wal_path = wal;
    MaterializedViewStore store(&db_, options);
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 0), exec).ok());
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 1), exec).ok());
    ASSERT_TRUE(store.Clear().ok());
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 2), exec).ok());
    ASSERT_TRUE(store.Clear().ok());
  }
  // Simulate a crash mid-append: trailing garbage without a newline.
  std::string content = ReadFileOrDie(wal);
  const size_t keep = content.find('\n') + 1;  // first record survives
  WriteFileOrDie(wal, content.substr(0, keep) + "deadbeef M 99 torn");

  GlobalViewStore().Reset();
  Database db2;
  BuildDb(&db2);
  Executor exec2(&db2);
  ViewStoreOptions options;
  options.wal_path = wal;
  MaterializedViewStore recovered(&db2, options);
  auto report = recovered.Recover(exec2, Resolver(db2), false);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().torn_tail);
  EXPECT_EQ(report.value().committed_views, 1u);
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_GE(GlobalViewStore().Read().torn_wal_tails, 1u);
  EXPECT_GE(GlobalViewStore().Read().recovered_views, 1u);
}

TEST_F(ViewStoreTest, RecoverBackgroundRebuildsOnThePool) {
  const std::string wal = TempPath("background.wal");
  Executor exec(&db_);
  {
    ViewStoreOptions options;
    options.wal_path = wal;
    MaterializedViewStore store(&db_, options);
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(store.Materialize(ViewPlan(db_, k), exec).ok());
    }
    ASSERT_TRUE(store.Clear().ok());
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(store.Materialize(ViewPlan(db_, k), exec).ok());
    }
    // Crash here: leave tables behind in db_? No — use a fresh db.
  }
  Database db2;
  BuildDb(&db2);
  Executor exec2(&db2);
  ViewStoreOptions options;
  options.wal_path = wal;
  MaterializedViewStore recovered(&db2, options);
  auto report = recovered.Recover(exec2, Resolver(db2), true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().committed_views, 3u);
  EXPECT_EQ(report.value().rematerialized, 3u);  // scheduled
  recovered.WaitIdle();
  EXPECT_EQ(recovered.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_NE(recovered.FindByKey(CanonicalKey(*ViewPlan(db2, k))), nullptr);
  }
}

TEST_F(ViewStoreTest, WalAppendFailureRollsBackTheInstall) {
  const std::string wal = TempPath("append_fail.wal");
  Executor exec(&db_);
  ViewStoreOptions options;
  options.wal_path = wal;
  MaterializedViewStore store(&db_, options);
  ASSERT_TRUE(
      Failpoints::Instance().Configure("viewstore.wal_append=error").ok());
  auto view = store.Materialize(ViewPlan(db_, 0), exec);
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.bytes_used(), 0u);
  EXPECT_FALSE(db_.HasTable("__mv_1"));  // install rolled back

  Failpoints::Instance().Clear();
  auto retry = store.Materialize(ViewPlan(db_, 0), exec);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(db_.HasTable(retry.value()->table_name));
}

TEST_F(ViewStoreTest, ReplayCorruptionFailpointTriggersTornTail) {
  const std::string wal = TempPath("bitrot.wal");
  Executor exec(&db_);
  {
    ViewStoreOptions options;
    options.wal_path = wal;
    MaterializedViewStore store(&db_, options);
    for (int k = 0; k < 4; ++k) {
      ASSERT_TRUE(store.Materialize(ViewPlan(db_, k), exec).ok());
    }
    ASSERT_TRUE(store.Clear().ok());
    for (int k = 0; k < 4; ++k) {
      ASSERT_TRUE(store.Materialize(ViewPlan(db_, k), exec).ok());
    }
  }
  ASSERT_TRUE(
      Failpoints::Instance().Configure("viewstore.wal_replay=corrupt").ok());
  auto replay = ViewStateLog::Replay(wal);
  Failpoints::Instance().Clear();
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().torn_tail);  // the bit flip ends the prefix
  auto clean = ViewStateLog::Replay(wal);
  ASSERT_TRUE(clean.ok());
  EXPECT_LT(replay.value().records.size(), clean.value().records.size());
}

TEST_F(ViewStoreTest, RematerializeFailureDropsTheViewFromCommittedState) {
  const std::string wal = TempPath("remat_fail.wal");
  Executor exec(&db_);
  {
    ViewStoreOptions options;
    options.wal_path = wal;
    MaterializedViewStore store(&db_, options);
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 0), exec).ok());
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 1), exec).ok());
  }
  Database db2;
  BuildDb(&db2);
  Executor exec2(&db2);
  ViewStoreOptions options;
  options.wal_path = wal;
  MaterializedViewStore recovered(&db2, options);
  ASSERT_TRUE(
      Failpoints::Instance().Configure("viewstore.rematerialize=error").ok());
  auto report = recovered.Recover(exec2, Resolver(db2), false);
  Failpoints::Instance().Clear();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().committed_views, 2u);
  EXPECT_EQ(report.value().rematerialized, 0u);
  EXPECT_EQ(report.value().failed, 2u);
  EXPECT_EQ(recovered.size(), 0u);

  // The failed views were dropped from the log: a second recovery into
  // a fresh store converges to the (now empty) committed state.
  Database db3;
  BuildDb(&db3);
  Executor exec3(&db3);
  MaterializedViewStore second(&db3, options);
  auto report2 = second.Recover(exec3, Resolver(db3), false);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2.value().committed_views, 0u);
  EXPECT_EQ(second.size(), 0u);
}

TEST_F(ViewStoreTest, UnresolvableViewIsDroppedNotFatal) {
  const std::string wal = TempPath("unresolvable.wal");
  Executor exec(&db_);
  {
    ViewStoreOptions options;
    options.wal_path = wal;
    MaterializedViewStore store(&db_, options);
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 0), exec).ok());
    ASSERT_TRUE(store.Materialize(ViewPlan(db_, 1), exec).ok());
  }
  Database db2;
  BuildDb(&db2);
  Executor exec2(&db2);
  const std::string keep_key = CanonicalKey(*ViewPlan(db2, 0));
  // A resolver with schema drift: only view 0 still resolves.
  auto partial = [&db2, keep_key](const std::string& key) -> PlanNodePtr {
    return key == keep_key ? ViewStoreTest::ViewPlan(db2, 0) : nullptr;
  };
  ViewStoreOptions options;
  options.wal_path = wal;
  MaterializedViewStore recovered(&db2, options);
  auto report = recovered.Recover(exec2, partial, false);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().committed_views, 2u);
  EXPECT_EQ(report.value().rematerialized, 1u);
  EXPECT_EQ(report.value().failed, 1u);
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_NE(recovered.FindByKey(keep_key), nullptr);
}

TEST_F(ViewStoreTest, CheckpointCompactsTheLog) {
  const std::string wal = TempPath("checkpoint.wal");
  Executor exec(&db_);
  ViewStoreOptions options;
  options.wal_path = wal;
  MaterializedViewStore store(&db_, options);
  std::vector<int64_t> ids;
  for (int k = 0; k < 4; ++k) {
    auto view = store.Materialize(ViewPlan(db_, k), exec);
    ASSERT_TRUE(view.ok());
    ids.push_back(view.value()->id);
  }
  ASSERT_TRUE(store.Drop(ids[0]).ok());
  ASSERT_TRUE(store.Drop(ids[2]).ok());
  auto before = ViewStateLog::Replay(wal);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().records.size(), 6u);  // 4 M + 2 D

  ASSERT_TRUE(store.Checkpoint().ok());
  auto after = ViewStateLog::Replay(wal);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().records.size(), 3u);  // C + 2 live M
  const OracleState state = FoldRecords(after.value().records);
  EXPECT_EQ(state.live.size(), 2u);
  EXPECT_TRUE(state.live.count(ids[1]) == 1 && state.live.count(ids[3]) == 1);
}

TEST_F(ViewStoreTest, FromEnvReadsBudget) {
  ASSERT_EQ(setenv("AUTOVIEW_VIEW_BUDGET_BYTES", "123456", 1), 0);
  EXPECT_EQ(ViewStoreOptions::FromEnv().budget_bytes, 123456u);
  ASSERT_EQ(setenv("AUTOVIEW_VIEW_BUDGET_BYTES", "not-a-number", 1), 0);
  EXPECT_EQ(ViewStoreOptions::FromEnv().budget_bytes, 0u);
  ASSERT_EQ(unsetenv("AUTOVIEW_VIEW_BUDGET_BYTES"), 0);
  EXPECT_EQ(ViewStoreOptions::FromEnv().budget_bytes, 0u);
}

TEST_F(ViewStoreTest, FromEnvStrictRejectsMalformedBudget) {
  // The strtoull-era parser silently wrapped "-1" to ~0 (effectively
  // unbounded) and accepted trailing junk; the strict from_chars path
  // is a loud ParseError for anything but a whole-string uint64.
  for (const char* bad : {"-1", "12x", " 64", "not-a-number", "+5",
                          "99999999999999999999999999"}) {
    ASSERT_EQ(setenv("AUTOVIEW_VIEW_BUDGET_BYTES", bad, 1), 0);
    const auto options = ViewStoreOptions::FromEnvStrict();
    ASSERT_FALSE(options.ok()) << bad;
    EXPECT_EQ(options.status().code(), StatusCode::kParseError) << bad;
    // The lenient form logs and stays unlimited instead of failing.
    EXPECT_EQ(ViewStoreOptions::FromEnv().budget_bytes, 0u) << bad;
  }
  ASSERT_EQ(setenv("AUTOVIEW_VIEW_BUDGET_BYTES", "4096", 1), 0);
  const auto valid = ViewStoreOptions::FromEnvStrict();
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(valid.value().budget_bytes, 4096u);
  ASSERT_EQ(unsetenv("AUTOVIEW_VIEW_BUDGET_BYTES"), 0);
  const auto unset = ViewStoreOptions::FromEnvStrict();
  ASSERT_TRUE(unset.ok());
  EXPECT_EQ(unset.value().budget_bytes, 0u);
}

TEST_F(ViewStoreTest, OversizedViewIsRejectedOutright) {
  GlobalViewStore().Reset();
  Executor exec(&db_);
  ViewStoreOptions options;
  options.budget_bytes = 1;  // nothing fits
  MaterializedViewStore store(&db_, options);
  auto view = store.Materialize(ViewPlan(db_, 0), exec);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(GlobalViewStore().Read().admissions_rejected, 1u);
}

TEST_F(ViewStoreTest, SnapshotMoveTransfersPins) {
  Executor exec(&db_);
  MaterializedViewStore store(&db_, ViewStoreOptions{});
  auto view = store.Materialize(ViewPlan(db_, 0), exec);
  ASSERT_TRUE(view.ok());
  const std::string table = view.value()->table_name;

  ViewSetSnapshot outer;
  {
    ViewSetSnapshot inner = store.PinLive();
    outer = std::move(inner);  // inner's destructor must not unpin
  }
  ASSERT_TRUE(store.Drop(view.value()->id).ok());
  EXPECT_TRUE(db_.HasTable(table));  // still pinned through `outer`
  outer.Release();
  EXPECT_FALSE(db_.HasTable(table));
}

}  // namespace
}  // namespace autoview
