#include <gtest/gtest.h>

#include <cstdio>

#include "core/autoview.h"
#include "plan/canonical.h"
#include "ilp/branch_and_bound.h"
#include "plan/builder.h"
#include "select/iterview.h"
#include "select/rlview.h"
#include "select/selector.h"
#include "workload/generator.h"

namespace autoview {
namespace {

CloudWorkloadSpec SmallCloudSpec() {
  CloudWorkloadSpec spec;
  spec.name = "mini";
  spec.projects = 3;
  spec.queries = 40;
  spec.min_rows = 300;
  spec.max_rows = 900;
  spec.subquery_pool = 6;
  spec.seed = 5;
  return spec;
}

TEST(GeneratorTest, CloudWorkloadParsesAndExecutes) {
  GeneratedWorkload wk = GenerateCloudWorkload(SmallCloudSpec());
  ASSERT_EQ(wk.sql.size(), 40u);
  EXPECT_EQ(wk.num_projects, 3u);
  EXPECT_GE(wk.db->TableNames().size(), 9u);  // >= 3 tables x 3 projects
  PlanBuilder builder(&wk.db->catalog());
  Executor exec(wk.db.get());
  size_t nonempty = 0;
  for (const auto& sql : wk.sql) {
    auto plan = builder.BuildFromSql(sql);
    ASSERT_TRUE(plan.ok()) << sql << "\n" << plan.status().ToString();
    auto result = exec.Execute(*plan.value());
    ASSERT_TRUE(result.ok()) << sql;
    nonempty += result.value().table.num_rows() > 0;
  }
  // Most queries should produce rows (sane predicates/joins).
  EXPECT_GT(nonempty, wk.sql.size() / 2);
}

TEST(GeneratorTest, JobWorkloadShape) {
  JobWorkloadSpec spec;
  spec.base_queries = 20;
  spec.min_rows = 300;
  spec.max_rows = 900;
  GeneratedWorkload job = GenerateJobWorkload(spec);
  EXPECT_EQ(job.sql.size(), 40u);  // twins double the count
  EXPECT_EQ(job.db->TableNames().size(), 21u);  // the IMDB-like schema
  PlanBuilder builder(&job.db->catalog());
  for (const auto& sql : job.sql) {
    auto plan = builder.BuildFromSql(sql);
    ASSERT_TRUE(plan.ok()) << sql << "\n" << plan.status().ToString();
  }
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  GeneratedWorkload a = GenerateCloudWorkload(SmallCloudSpec());
  GeneratedWorkload b = GenerateCloudWorkload(SmallCloudSpec());
  ASSERT_EQ(a.sql.size(), b.sql.size());
  for (size_t i = 0; i < a.sql.size(); ++i) EXPECT_EQ(a.sql[i], b.sql[i]);
}

TEST(GeneratorTest, WorkloadsShareSubqueries) {
  GeneratedWorkload wk = GenerateCloudWorkload(SmallCloudSpec());
  PlanBuilder builder(&wk.db->catalog());
  std::vector<PlanNodePtr> plans;
  for (const auto& sql : wk.sql) {
    plans.push_back(builder.BuildFromSql(sql).value());
  }
  SubqueryClusterer clusterer;
  auto analysis = clusterer.Analyze(plans);
  EXPECT_GT(analysis.num_equivalent_pairs, 0u);
  EXPECT_GT(analysis.candidates.size(), 0u);
  EXPECT_GT(analysis.associated_queries.size(), plans.size() / 3);
}

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = GenerateCloudWorkload(SmallCloudSpec());
    system_ = std::make_unique<AutoViewSystem>(workload_.db.get(),
                                               AutoViewOptions{});
    ASSERT_TRUE(system_->LoadWorkload(workload_.sql).ok());
    ASSERT_TRUE(system_->BuildGroundTruth().ok());
  }

  GeneratedWorkload workload_;
  std::unique_ptr<AutoViewSystem> system_;
};

TEST_F(SystemTest, GroundTruthProblemIsConsistent) {
  const MvsProblem& p = system_->problem();
  EXPECT_EQ(p.num_views(), system_->candidates().size());
  EXPECT_EQ(p.num_queries(), system_->analysis().associated_queries.size());
  EXPECT_TRUE(p.Validate().ok());
  for (size_t j = 0; j < p.num_views(); ++j) {
    EXPECT_GT(p.overhead[j], 0.0);
    EXPECT_GE(p.frequency[j], 2u);  // candidates are shared subqueries
  }
  // At least one applicable pair has positive benefit (computation is
  // actually saved by reusing a materialized view).
  bool positive = false;
  for (const auto& row : p.benefit) {
    for (double b : row) positive |= b > 0;
  }
  EXPECT_TRUE(positive);
}

TEST_F(SystemTest, DatasetTargetsMatchDefinition) {
  const auto& dataset = system_->cost_dataset();
  ASSERT_FALSE(dataset.empty());
  const auto& pairs = system_->cost_dataset_pairs();
  ASSERT_EQ(dataset.size(), pairs.size());
  for (size_t n = 0; n < dataset.size(); ++n) {
    const auto& sample = dataset[n];
    EXPECT_GT(sample.query_cost, 0.0);
    EXPECT_GT(sample.subquery_cost, 0.0);
    EXPECT_GE(sample.target, 0.0);
    // benefit[row][j] == A(q) - A(q|v) == query_cost - target.
    const auto& [row, j] = pairs[n];
    EXPECT_NEAR(system_->problem().benefit[row][j],
                sample.query_cost - sample.target, 1e-9);
  }
}

TEST_F(SystemTest, EndToEndExecutionImprovesCost) {
  // Pick views with the exact solver (small instance) and execute.
  BranchAndBoundSolver::Options opts;
  opts.max_nodes = 500000;
  BranchAndBoundSolver solver(opts);
  auto solution = solver.Solve(system_->problem());
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ASSERT_GT(solution.value().utility, 0.0);

  auto report = system_->ExecuteSolution(solution.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().num_queries, workload_.sql.size());
  EXPECT_GT(report.value().num_views, 0u);
  EXPECT_GT(report.value().num_rewritten, 0u);
  EXPECT_GT(report.value().benefit, 0.0);
  // Actual end-to-end saving should be positive and close to the
  // predicted utility (both derive from the same deterministic engine).
  const double actual = report.value().benefit - report.value().view_overhead;
  EXPECT_GT(actual, 0.0);
  EXPECT_NEAR(actual, solution.value().utility,
              0.2 * solution.value().utility + 1e-9);
  EXPECT_GT(report.value().ratio(), 0.0);
  // Latency should improve too.
  EXPECT_LT(report.value().rewritten_latency_min,
            report.value().raw_latency_min);
}

TEST_F(SystemTest, RewritesPreserveResultsAcrossWorkload) {
  // For every (query, view) pair used in ground truth, the rewritten
  // query must produce the same rows as the original.
  const auto& pairs = system_->cost_dataset_pairs();
  Executor exec(workload_.db.get());
  MaterializedViewStore store(workload_.db.get());
  std::vector<const MaterializedView*> views;
  for (const auto& cand : system_->candidates()) {
    auto view = store.Materialize(cand.plan, exec);
    ASSERT_TRUE(view.ok());
    views.push_back(view.value());
  }
  Rewriter rewriter(&workload_.db->catalog());
  size_t checked = 0;
  for (size_t n = 0; n < pairs.size() && checked < 25; ++n) {
    const auto& [row, j] = pairs[n];
    const size_t qi = system_->analysis().associated_queries[row];
    bool changed = false;
    auto rewritten =
        rewriter.Rewrite(system_->queries()[qi], *views[j], &changed);
    ASSERT_TRUE(rewritten.ok());
    if (!changed) continue;
    auto original = exec.Execute(*system_->queries()[qi]);
    auto after = exec.Execute(*rewritten.value());
    ASSERT_TRUE(original.ok() && after.ok());
    EXPECT_TRUE(
        TablesEqualUnordered(original.value().table, after.value().table))
        << "query " << qi << " view " << j;
    ++checked;
  }
  EXPECT_GT(checked, 10u);
  ASSERT_TRUE(store.Clear().ok());
}

TEST_F(SystemTest, MetadataExportImportRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/autoview_meta.tsv";
  MetadataStore store(path);
  ASSERT_TRUE(system_->ExportMetadata(store).ok());
  auto imported = system_->ImportCostSamples(store);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  const auto& original = system_->cost_dataset();
  ASSERT_EQ(imported.value().size(), original.size());
  for (size_t n = 0; n < original.size(); ++n) {
    EXPECT_DOUBLE_EQ(imported.value()[n].target, original[n].target);
    EXPECT_DOUBLE_EQ(imported.value()[n].query_cost, original[n].query_cost);
    EXPECT_EQ(imported.value()[n].tables, original[n].tables);
    // The re-built plans must be semantically the same.
    EXPECT_TRUE(
        PlansEquivalent(*imported.value()[n].view, *original[n].view));
  }
  std::remove(path.c_str());
}

TEST_F(SystemTest, SelectorsProduceFeasibleSolutionsOnRealInstance) {
  const MvsProblem& p = system_->problem();
  IterViewSelector iterview = IterViewSelector::IterView(30, 3);
  auto iter_solution = iterview.Select(p);
  ASSERT_TRUE(iter_solution.ok());
  EXPECT_TRUE(IsFeasible(p, iter_solution.value().z, iter_solution.value().y));

  RLViewSelector::Options rl_opts;
  rl_opts.init_iterations = 5;
  rl_opts.episodes = 5;
  RLViewSelector rlview(rl_opts);
  auto rl_solution = rlview.Select(p);
  ASSERT_TRUE(rl_solution.ok());
  EXPECT_TRUE(IsFeasible(p, rl_solution.value().z, rl_solution.value().y));
  EXPECT_GT(rl_solution.value().utility, 0.0);
}

}  // namespace
}  // namespace autoview
